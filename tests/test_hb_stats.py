"""Tests for happens-before statistics and rule attribution."""

from repro import build_happens_before
from repro.hb import (
    RULE_ATOMICITY,
    RULE_EXTERNAL,
    RULE_FORK,
    RULE_PROGRAM_ORDER,
    RULE_QUEUE_1,
    RULE_SEND,
    hb_stats,
)
from repro.testing import TraceBuilder


def build_mixed_trace():
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.thread("U")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.event("X", looper="L", external=True)
    b.event("Y", looper="L", external=True)
    b.begin("T")
    b.fork("T", "U")
    b.begin("U")
    b.end("U")
    b.send("T", "A", delay=1)
    b.send("T", "B", delay=1)
    b.end("T")
    b.begin("A"); b.end("A")
    b.begin("B"); b.end("B")
    b.begin("X"); b.end("X")
    b.begin("Y"); b.end("Y")
    return b.build()


class TestHbStats:
    def test_counts_cover_every_edge(self):
        trace = build_mixed_trace()
        hb = build_happens_before(trace)
        stats = hb_stats(trace, hb)
        assert sum(stats.rule_counts.values()) == stats.edges
        assert stats.edges == hb.graph.edge_count

    def test_expected_rules_present(self):
        trace = build_mixed_trace()
        stats = hb_stats(trace, build_happens_before(trace))
        for rule in (RULE_PROGRAM_ORDER, RULE_FORK, RULE_SEND, RULE_EXTERNAL):
            assert stats.rule_counts.get(rule, 0) >= 1, rule
        # ordered sends with equal delays: queue rule 1 fires (seeded)
        assert stats.rule_counts.get(RULE_QUEUE_1, 0) >= 1

    def test_task_kind_counts(self):
        trace = build_mixed_trace()
        stats = hb_stats(trace, build_happens_before(trace))
        assert stats.events == 4
        assert stats.loopers == 1
        assert stats.threads == 2

    def test_atomicity_attribution_on_fig4a(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S1"); b.thread("S2"); b.thread("T")
        b.event("A", looper="L"); b.event("B", looper="L")
        b.begin("S1"); b.send("S1", "A"); b.end("S1")
        b.begin("S2"); b.send("S2", "B"); b.end("S2")
        b.begin("A"); b.fork("A", "T"); b.end("A")
        b.begin("T"); b.register("T", "Lst"); b.end("T")
        b.begin("B"); b.perform("B", "Lst"); b.end("B")
        trace = b.build()
        stats = hb_stats(trace, build_happens_before(trace))
        assert stats.rule_counts.get(RULE_ATOMICITY, 0) == 1
        assert stats.derived_edges == 1

    def test_format_is_readable(self):
        trace = build_mixed_trace()
        stats = hb_stats(trace, build_happens_before(trace))
        text = stats.format()
        assert "key nodes" in text
        assert "edges by rule" in text
        assert "program-order" in text

    def test_closure_work_counters_populated(self):
        trace = build_mixed_trace()
        hb = build_happens_before(trace)
        stats = hb_stats(trace, hb)
        assert stats.closure_recomputations == 1
        assert stats.bits_propagated == hb.graph.bits_propagated
        assert stats.profile is hb.profile
        assert sum(stats.edges_per_round) == stats.derived_edges

    def test_format_reports_phases_and_closure_work(self):
        trace = build_mixed_trace()
        stats = hb_stats(trace, build_happens_before(trace))
        text = stats.format()
        assert "closure work: 1 full recomputation(s)" in text
        assert "phase timings: scan" in text
        assert "fixpoint groups:" in text

    def test_legacy_build_reports_its_recomputations(self):
        trace = build_mixed_trace()
        hb = build_happens_before(trace, incremental=False)
        stats = hb_stats(trace, hb)
        assert stats.closure_recomputations >= 1
        assert stats.bits_propagated == 0
