"""Build-time consistency checks of the happens-before builder.

Regression tests for two bugs:

* the closure/cycle check used to run only as a side effect of the
  derived-rule fixpoint, so ablation configurations that disable the
  fixpoint (``sequential_events=True``, or atomicity and all queue
  rules off) deferred :class:`HBCycleError` to whichever ``ordered()``
  query happened to run first — now the builder closes the graph
  unconditionally and an inconsistent trace fails at build time under
  *every* configuration;
* ``HappensBefore.explain`` guarded its internal invariants with bare
  ``assert`` statements that vanish under ``python -O`` — they are now
  :class:`HBInvariantError` with descriptive messages.
"""

import pytest

from repro.hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    NO_QUEUE_MODEL,
    HBCycleError,
    HBInvariantError,
    ModelConfig,
    build_happens_before,
)
from repro.testing import TraceBuilder


def cyclic_trace():
    """A hand-written trace whose derived order is cyclic.

    Thread A joins on B *before* forking it: join gives
    ``end(B) < join`` and fork gives ``fork < begin(B)``, which closes
    a cycle through A's program order.  Both tasks are plain threads,
    so the cycle exists under every configuration (fork/join is never
    ablated), including the ones that skip the derived-rule fixpoint.
    """
    b = TraceBuilder()
    b.thread("A")
    b.thread("B")
    b.begin("A")
    b.join("A", "B")
    b.fork("A", "B")
    b.end("A")
    b.begin("B")
    b.end("B")
    return b.build(validate=False)


ABLATIONS = [
    pytest.param(CAFA_MODEL, id="cafa"),
    pytest.param(CONVENTIONAL_MODEL, id="conventional"),
    pytest.param(NO_QUEUE_MODEL, id="no-queue"),
    pytest.param(ModelConfig(sequential_events=True), id="sequential-events"),
    pytest.param(
        ModelConfig(
            atomicity=False,
            queue_rule_1=False,
            queue_rule_2=False,
            queue_rule_3=False,
            queue_rule_4=False,
        ),
        id="derived-rules-off",
    ),
]


class TestBuildTimeCycleCheck:
    @pytest.mark.parametrize("config", ABLATIONS)
    def test_cycle_raises_at_build_time(self, config):
        with pytest.raises(HBCycleError) as excinfo:
            build_happens_before(cyclic_trace(), config)
        assert len(excinfo.value.cycle) >= 2

    @pytest.mark.parametrize("config", ABLATIONS)
    def test_cycle_raises_at_build_time_legacy_builder(self, config):
        with pytest.raises(HBCycleError):
            build_happens_before(cyclic_trace(), config, incremental=False)

    def test_acyclic_trace_still_builds_under_ablations(self):
        b = TraceBuilder()
        b.thread("A")
        b.thread("B")
        b.begin("A")
        b.fork("A", "B")
        b.end("A")
        b.begin("B")
        b.end("B")
        trace = b.build()
        for param in ABLATIONS:
            hb = build_happens_before(trace, param.values[0])
            assert hb.ordered(0, len(trace) - 1)


def two_disjoint_threads():
    b = TraceBuilder()
    b.thread("T1")
    b.thread("T2")
    b.begin("T1")
    b.end("T1")
    b.begin("T2")
    b.end("T2")
    return b.build()


class TestExplainInvariantErrors:
    """White-box: force each internal inconsistency and check the error."""

    def test_explain_reports_broken_edge_lists(self):
        b = TraceBuilder()
        b.thread("T1")
        b.thread("T2")
        b.begin("T1")
        b.fork("T1", "T2")
        b.end("T1")
        b.begin("T2")
        b.end("T2")
        hb = build_happens_before(b.build())
        a, z = 0, len(hb._op_task) - 1
        assert hb.explain(a, z) is not None
        # Corrupt the successor lists: reachability (cached bitsets)
        # still says ordered, but no edge path exists any more.
        for succ in hb.graph._succ:
            succ.clear()
        with pytest.raises(HBInvariantError, match="disagree with the edge lists"):
            hb.explain(a, z)

    def test_explain_reports_inconsistent_closure(self):
        hb = build_happens_before(two_disjoint_threads())
        # Ops 0..1 are T1, 2..3 are T2 — genuinely concurrent.  Lie
        # about ordered() so explain() walks into the bitset lookup.
        hb.ordered = lambda a, b: True
        with pytest.raises(HBInvariantError, match="closure bitsets are inconsistent"):
            hb.explain(0, 3)

    def test_explain_reports_missing_key_node(self):
        hb = build_happens_before(two_disjoint_threads())
        hb.ordered = lambda a, b: True
        hb._first_key_at_or_after = lambda task, pos: None
        with pytest.raises(HBInvariantError, match="no key node at or after"):
            hb.explain(0, 3)

    def test_invariant_error_is_a_runtime_error(self):
        # Callers that catch RuntimeError keep working.
        assert issubclass(HBInvariantError, RuntimeError)
