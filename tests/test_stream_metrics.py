"""The daemon's live telemetry: router metrics snapshots, the
/metrics and /status.json endpoints of a running `repro serve`,
disabled mode, and report fidelity with telemetry on vs. off."""

import json
import os
import socket
import threading
import time
import urllib.error

import pytest

from repro.apps import ALL_APPS, make_app
from repro.cli import main
from repro.obs import get_registry
from repro.obs.export import (
    MetricsServer,
    MetricsSnapshot,
    read_status_socket,
    scrape_http,
)
from repro.stream import SessionRouter
from repro.trace import (
    dumps_trace,
    dumps_trace_bytes,
    encode_finish_frame,
    encode_mux_header,
    encode_session,
)

SCALE = 0.02
SEED = 1

#: metric families a metrics-enabled daemon must export (the catalog
#: in docs/observability.md; CI asserts the same set mid-soak)
REQUIRED_FAMILIES = {
    "repro_router_frames_total",
    "repro_router_bytes_total",
    "repro_router_sessions_total",
    "repro_router_shards",
    "repro_shard_sessions_active",
    "repro_shard_sessions_finished_total",
    "repro_shard_sessions_failed_total",
    "repro_shard_frames_handled_total",
    "repro_shard_ops_ingested_total",
    "repro_shard_records_ingested_total",
    "repro_shard_epochs_retired_total",
    "repro_shard_reports_emitted_total",
    "repro_shard_closure_bytes",
    "repro_feed_latency_seconds",
}

_PAYLOAD = {}


def one_payload() -> bytes:
    if not _PAYLOAD:
        trace = make_app("connectbot", scale=SCALE, seed=SEED).run().trace
        _PAYLOAD["bytes"] = dumps_trace_bytes(trace)
    return _PAYLOAD["bytes"]


def mux_stream(sessions, payload) -> bytes:
    buf = bytearray(encode_mux_header())
    for sid in sessions:
        for frame in encode_session(sid, payload, chunk_size=4096):
            buf += frame
    return bytes(buf)


def families_of(snapshot) -> set:
    keys = (
        list(snapshot.counters)
        + list(snapshot.gauges)
        + list(snapshot.histograms)
    )
    return {key.split("{", 1)[0] for key in keys}


class TestRouterMetricsSnapshot:
    def test_inline_router_exports_the_required_families(self):
        router = SessionRouter(0, metrics=True)
        router.feed(mux_stream(["a", "b"], one_payload()))
        snap = router.metrics_snapshot()
        missing = (REQUIRED_FAMILIES - {"repro_shard_queue_depth"}) - (
            families_of(snap)
        )
        assert not missing, f"families missing from the snapshot: {missing}"
        router.drain()

    def test_counters_are_monotonic_across_scrapes(self):
        router = SessionRouter(0, metrics=True)
        payload = one_payload()
        router.feed(mux_stream(["a"], payload))
        first = router.metrics_snapshot()
        router.feed(mux_stream(["b"], payload)[len(encode_mux_header()):])
        second = router.metrics_snapshot()
        for key, value in first.counters.items():
            assert second.counters[key] >= value, key
        assert (
            second.counters["repro_router_frames_total"]
            > first.counters["repro_router_frames_total"]
        )
        router.drain()

    def test_feed_latency_histogram_counts_data_frames(self):
        router = SessionRouter(0, metrics=True)
        router.feed(mux_stream(["a"], one_payload()))
        snap = router.metrics_snapshot()
        hist = snap.histograms["repro_feed_latency_seconds"]
        assert hist.count > 0
        assert hist.sum >= 0
        router.drain()

    def test_metrics_off_reports_router_counters_only(self):
        router = SessionRouter(0, metrics=False)
        router.feed(mux_stream(["a"], one_payload()))
        snap = router.metrics_snapshot()
        assert "repro_router_frames_total" in snap.counters
        assert not snap.histograms
        assert not any(
            name.startswith("repro_shard_") for name in families_of(snap)
        )
        router.drain()

    def test_sharded_router_ships_telemetry(self):
        router = SessionRouter(2, metrics=True, telemetry_interval=0.01)
        payload = one_payload()
        stream = mux_stream([f"s-{k}" for k in range(4)], payload)
        for i in range(0, len(stream), 4096):
            router.feed(stream[i:i + 4096])
            time.sleep(0.002)
        deadline = time.monotonic() + 10.0
        families = set()
        while time.monotonic() < deadline:
            families = families_of(router.metrics_snapshot())
            if "repro_shard_ops_ingested_total" in families:
                break
            time.sleep(0.05)
        assert "repro_shard_ops_ingested_total" in families
        assert "repro_shard_queue_bound" in families
        report = router.drain()
        assert len(report.sessions) == 4


class TestMetricsServer:
    def test_scrapes_prometheus_and_json(self):
        snap = MetricsSnapshot()
        snap.counter("repro_test_total", 7.0, help="a counter")
        server = MetricsServer(lambda: snap)
        try:
            text = scrape_http(server.url, "/metrics")
            assert "# TYPE repro_test_total counter" in text
            assert "repro_test_total 7" in text
            doc = scrape_http(server.url, "/status.json")
            assert doc["schema"] == "repro-metrics/1"
            assert doc["counters"]["repro_test_total"] == 7.0
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = MetricsServer(lambda: MetricsSnapshot())
        try:
            with pytest.raises(urllib.error.HTTPError) as ei:
                scrape_http(server.url, "/nope")
            assert ei.value.code == 404
        finally:
            server.stop()

    def test_provider_errors_surface_as_500(self):
        def broken():
            raise RuntimeError("snapshot failed")

        server = MetricsServer(broken)
        try:
            with pytest.raises(urllib.error.HTTPError) as ei:
                scrape_http(server.url, "/metrics")
            assert ei.value.code == 500
        finally:
            server.stop()


def _free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _upload(path, sid, payload, finish=False, frame_sleep=0.0):
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    try:
        client.sendall(encode_mux_header())
        if payload:
            for frame in encode_session(sid, payload, chunk_size=2048):
                client.sendall(frame)
                if frame_sleep:
                    time.sleep(frame_sleep)
        if finish:
            client.sendall(encode_finish_frame())
    finally:
        client.close()


class TestLiveServeScrape:
    """Scrape a live `repro serve --metrics-port` mid-run: the
    required families are present, counters are monotonic between
    scrapes, and the status socket serves the same document."""

    def test_mid_run_scrape(self, tmp_path, capsys):
        sock_path = str(tmp_path / "serve.sock")
        status_path = str(tmp_path / "status.sock")
        port = _free_port()
        outcome = {}

        def run():
            outcome["rc"] = main([
                "serve", "--socket", sock_path, "--shards", "0",
                "--metrics-port", str(port),
                "--status-socket", status_path,
            ])

        server = threading.Thread(target=run)
        server.start()
        try:
            deadline = time.monotonic() + 10.0
            while not os.path.exists(sock_path) and (
                time.monotonic() < deadline
            ):
                time.sleep(0.05)
            payload = one_payload()
            uploader = threading.Thread(
                target=_upload,
                args=(sock_path, "live-1", payload),
                kwargs={"frame_sleep": 0.005},
            )
            uploader.start()
            url = f"http://127.0.0.1:{port}"
            time.sleep(0.2)
            first = scrape_http(url, "/status.json")
            text = scrape_http(url, "/metrics")
            for family in ("repro_router_frames_total",
                           "repro_connections_total",
                           "repro_shard_sessions_active"):
                assert f"# TYPE {family} " in text, family
            uploader.join()
            second = scrape_http(url, "/status.json")
            for key, value in first["counters"].items():
                assert second["counters"].get(key, 0.0) >= value, key
            status = read_status_socket(status_path)
            assert status["schema"] == "repro-metrics/1"
            assert status["counters"]["repro_connections_total"] >= 1
        finally:
            _upload(sock_path, "fin", b"", finish=True)
            server.join(timeout=60)
        assert outcome.get("rc") == 0
        capsys.readouterr()

    def test_no_metrics_registers_nothing(self, tmp_path, capsys):
        sock_path = str(tmp_path / "serve.sock")
        port = _free_port()
        outcome = {}

        def run():
            outcome["rc"] = main([
                "serve", "--socket", sock_path, "--shards", "0",
                "--metrics-port", str(port), "--no-metrics",
            ])

        server = threading.Thread(target=run)
        server.start()
        try:
            deadline = time.monotonic() + 10.0
            while not os.path.exists(sock_path) and (
                time.monotonic() < deadline
            ):
                time.sleep(0.05)
            _upload(sock_path, "quiet-1", one_payload())
            text = scrape_http(f"http://127.0.0.1:{port}", "/metrics")
            # Router- and transport-level counters cost nothing and
            # stay; per-shard instrumentation must be absent.
            assert "repro_router_frames_total" in text
            assert "repro_feed_latency_seconds" not in text
            assert "repro_shard_sessions_active" not in text
            # The process-default registry registered nothing.
            assert len(get_registry()) == 0
            assert not get_registry().enabled
        finally:
            _upload(sock_path, "fin", b"", finish=True)
            server.join(timeout=60)
        assert outcome.get("rc") == 0
        capsys.readouterr()


class TestTelemetryFidelity:
    """The acceptance bar: session reports are byte-identical with
    telemetry on and off, across all ten apps."""

    def test_ten_app_reports_identical_on_and_off(self):
        payloads = {}
        for i, app in enumerate(ALL_APPS):
            trace = make_app(app.name, scale=SCALE, seed=SEED).run().trace
            payloads[app.name] = (
                dumps_trace_bytes(trace)
                if i % 2
                else dumps_trace(trace).encode("utf-8")
            )
        buf = bytearray(encode_mux_header())
        for sid in sorted(payloads):
            for frame in encode_session(sid, payloads[sid], chunk_size=4096):
                buf += frame
        stream = bytes(buf)

        def run(metrics):
            router = SessionRouter(0, metrics=metrics)
            router.feed(stream)
            report = router.drain()
            return {
                sid: json.dumps(rep.as_dict(), sort_keys=True)
                for sid, rep in report.sessions.items()
            }

        enabled = run(True)
        disabled = run(False)
        assert enabled == disabled
