"""The cross-app scaling matrix: determinism across worker counts,
the JSON table shape, the dense-bits escape hatch, and the CLI
subcommand."""

import json

import pytest

from repro.analysis import ScalingMatrix, scaling_matrix
from repro.apps import ALL_APPS
from repro.cli import main

APPS = ALL_APPS[:3]
SCALES = [0.02, 0.05]

#: ScalingPoint fields that measure wall-clock, not behavior — a
#: parallel run cannot reproduce them and the determinism assertions
#: must ignore them.
TIMING_FIELDS = {"hb_seconds", "detect_seconds"}


def fingerprint(matrix: ScalingMatrix):
    """Everything deterministic about a matrix, comparably."""
    table = matrix.as_dict()
    for points in table["apps"].values():
        for point in points:
            for field in TIMING_FIELDS:
                del point[field]
    return table


class TestScalingMatrix:
    def test_parallel_equals_serial(self):
        serial = scaling_matrix(apps=APPS, scales=SCALES, seed=0)
        parallel = scaling_matrix(apps=APPS, scales=SCALES, seed=0, jobs=3)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_rows_stay_in_app_order(self):
        matrix = scaling_matrix(apps=APPS, scales=[0.02], jobs=2)
        assert list(matrix.rows) == [a.name for a in APPS]
        assert all(len(points) == 1 for points in matrix.rows.values())

    def test_points_carry_the_closure_counters(self):
        matrix = scaling_matrix(apps=APPS[:1], scales=SCALES)
        points = matrix.rows[APPS[0].name]
        assert [p.trace_ops for p in points] == sorted(
            p.trace_ops for p in points
        )
        for point in points:
            assert point.key_nodes > 0
            assert point.closure_bytes > 0
            assert point.chunks_allocated > 0  # sparse is the default

    def test_dense_bits_flag_reaches_the_build(self):
        sparse = scaling_matrix(apps=APPS[:1], scales=[0.02])
        dense = scaling_matrix(apps=APPS[:1], scales=[0.02], dense_bits=True)
        assert not sparse.dense_bits and dense.dense_bits
        s, d = sparse.rows[APPS[0].name][0], dense.rows[APPS[0].name][0]
        assert d.chunks_allocated == 0  # dense storage has no chunks
        assert s.chunks_allocated > 0
        # The representations do identical logical work.
        assert s.key_nodes == d.key_nodes
        assert s.fixpoint_rounds == d.fixpoint_rounds
        assert s.bits_propagated == d.bits_propagated

    def test_to_json_is_one_table(self):
        matrix = scaling_matrix(apps=APPS[:2], scales=[0.02])
        table = json.loads(matrix.to_json())
        assert set(table) == {"scales", "seed", "dense_bits", "apps"}
        assert list(table["apps"]) == [a.name for a in APPS[:2]]
        point = table["apps"][APPS[0].name][0]
        assert {"events", "closure_bytes", "events_repropagated"} <= set(point)

    def test_rejects_bad_jobs_and_empty_scales(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            scaling_matrix(apps=APPS, jobs=0)
        with pytest.raises(ValueError, match="at least one scale"):
            scaling_matrix(apps=APPS, scales=[])


class TestScalingMatrixCLI:
    def test_prints_json_to_stdout(self, capsys):
        assert main(
            ["scaling-matrix", "--apps", "vlc", "--scales", "0.02"]
        ) == 0
        table = json.loads(capsys.readouterr().out)
        assert list(table["apps"]) == ["vlc"]
        assert table["dense_bits"] is False

    def test_writes_json_file_with_jobs(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        assert main(
            [
                "scaling-matrix",
                "--apps", "vlc", "mytracks",
                "--scales", "0.02",
                "--jobs", "2",
                "--dense-bits",
                "-o", str(out),
            ]
        ) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        table = json.loads(out.read_text())
        assert list(table["apps"]) == ["vlc", "mytracks"]
        assert table["dense_bits"] is True

    def test_unknown_app_is_a_usage_error(self, capsys):
        assert main(["scaling-matrix", "--apps", "ghost"]) == 2
        assert "unknown app" in capsys.readouterr().err
