"""Tests for the Graphviz export + metamorphic detector properties."""

import pytest

from repro import build_happens_before
from repro.detect import detect_use_free_races
from repro.hb.dot import to_dot
from repro.testing import TraceBuilder


def build_sample():
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.thread("U")
    b.event("E", looper="L")
    b.begin("T")
    b.fork("T", "U")
    b.send("T", "E")
    b.end("T")
    b.begin("U")
    b.end("U")
    b.begin("E")
    b.end("E")
    return b.build()


class TestDotExport:
    def test_collapsed_view_has_tasks_and_rules(self):
        trace = build_sample()
        hb = build_happens_before(trace)
        dot = to_dot(trace, hb)
        assert dot.startswith("digraph happens_before {")
        assert '"T" -> "U" [label="fork"];' in dot
        assert '"T" -> "E" [label="send"];' in dot
        assert "program-order" not in dot  # intra-task noise hidden

    def test_event_nodes_drawn_as_boxes(self):
        trace = build_sample()
        dot = to_dot(trace, build_happens_before(trace))
        assert '"E" [shape=box];' in dot

    def test_full_view_has_one_node_per_key_op(self):
        trace = build_sample()
        hb = build_happens_before(trace)
        dot = to_dot(trace, hb, collapse_tasks=False)
        assert dot.count("label=") >= hb.graph.node_count

    def test_rule_filter(self):
        trace = build_sample()
        hb = build_happens_before(trace)
        dot = to_dot(trace, hb, include_rules={"fork"})
        assert "fork" in dot
        assert "send" not in dot

    def test_quoting_of_awkward_names(self):
        b = TraceBuilder()
        b.thread('we"ird')
        b.thread("other")
        b.begin('we"ird')
        b.fork('we"ird', "other")
        b.begin("other")
        b.end("other")
        b.end('we"ird')
        trace = b.build()
        dot = to_dot(trace, build_happens_before(trace))
        assert '\\"' in dot


class TestMetamorphicDetector:
    """Adding unrelated work to a trace never removes a race report."""

    def _race_builder(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T1"); b.send("T1", "A"); b.end("T1")
        b.begin("T2"); b.send("T2", "B"); b.end("T2")
        b.begin("A")
        b.ptr_read("A", ("obj", 1, "p"), object_id=9, method="onUse", pc=0)
        b.deref("A", object_id=9, method="onUse", pc=1)
        b.end("A")
        b.begin("B")
        b.ptr_write("B", ("obj", 1, "p"), value=None, container=1, method="onFree", pc=0)
        b.end("B")
        return b

    def test_appending_an_independent_thread_preserves_the_report(self):
        base = self._race_builder().build()
        base_count = detect_use_free_races(base).report_count()

        extended_builder = self._race_builder()
        extended_builder.thread("spectator")
        extended_builder.begin("spectator")
        extended_builder.read("spectator", "unrelated")
        extended_builder.write("spectator", "unrelated")
        extended_builder.end("spectator")
        extended = extended_builder.build()
        assert detect_use_free_races(extended).report_count() == base_count == 1

    def test_appending_independent_events_preserves_the_report(self):
        extended_builder = self._race_builder()
        extended_builder.thread("T3")
        extended_builder.event("C", looper="L")
        extended_builder.begin("T3")
        extended_builder.send("T3", "C")
        extended_builder.end("T3")
        extended_builder.begin("C")
        extended_builder.read("C", "y")
        extended_builder.end("C")
        extended = extended_builder.build()
        assert detect_use_free_races(extended).report_count() == 1

    def test_extra_uses_of_other_fields_do_not_collide(self):
        extended_builder = self._race_builder()
        extended_builder.thread("T4")
        extended_builder.begin("T4")
        extended_builder.ptr_read(
            "T4", ("obj", 2, "q"), object_id=5, method="elsewhere", pc=0
        )
        extended_builder.deref("T4", object_id=5, method="elsewhere", pc=1)
        extended_builder.end("T4")
        extended = extended_builder.build()
        result = detect_use_free_races(extended)
        assert result.report_count() == 1
        assert result.reports[0].key.field == "p"
