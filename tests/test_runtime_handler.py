"""Tests for the Handler / AsyncTask facades."""

import pytest

from repro.detect import detect_use_free_races
from repro.runtime import AndroidSystem
from repro.runtime.handler import AsyncTask, Handler
from repro.trace import SendAtFront


def make_app():
    system = AndroidSystem(seed=1)
    app = system.process("app")
    main = app.looper("main")
    return system, app, main


class TestHandler:
    def test_post_runs_on_the_looper(self):
        system, app, main = make_app()
        handler = Handler(main)
        seen = []
        app.thread("t", lambda ctx: handler.post(ctx, lambda c: seen.append(c.current_task)))
        system.run()
        assert len(seen) == 1
        assert seen[0].startswith("ev")

    def test_post_delayed_defers(self):
        system, app, main = make_app()
        handler = Handler(main)
        times = []
        app.thread(
            "t",
            lambda ctx: handler.post_delayed(ctx, lambda c: times.append(c.now_ms), 40),
        )
        system.run()
        assert times[0] >= 40

    def test_post_at_front_emits_send_at_front(self):
        system, app, main = make_app()
        handler = Handler(main)

        def seed(ctx):
            handler.post(ctx, lambda c: None, label="tail")
            handler.post_at_front(ctx, lambda c: None, label="front")

        app.thread("t", lambda ctx: ctx.post(main, seed, label="seed"))
        system.run()
        assert any(isinstance(op, SendAtFront) for op in system.trace())

    def test_send_message_dispatches_by_what(self):
        system, app, main = make_app()
        received = []

        def handle_message(ctx, what, obj):
            received.append((what, obj))

        handler = Handler(main, message_handler=handle_message)

        def t(ctx):
            handler.send_message(ctx, 1, "hello")
            handler.send_message(ctx, 2, "world", delay_ms=5)

        app.thread("t", t)
        system.run()
        assert received == [(1, "hello"), (2, "world")]

    def test_send_message_without_handler_raises(self):
        system, app, main = make_app()
        handler = Handler(main)
        app.thread("t", lambda ctx: handler.send_message(ctx, 1))
        with pytest.raises(ValueError, match="message_handler"):
            system.run()


class TestAsyncTask:
    def test_background_then_post_execute(self):
        system, app, main = make_app()
        handler = Handler(main)
        phases = []

        def background(ctx, n):
            phases.append(("bg", ctx.current_task))
            return n * 2

        def post_execute(ctx, result):
            phases.append(("ui", result))

        task = AsyncTask("fetch", background, post_execute)
        app.thread("t", lambda ctx: task.execute(ctx, handler, args=(21,)))
        system.run()
        assert ("ui", 42) in phases
        bg_task = next(t for p, t in phases if p == "bg")
        assert "fetch" in bg_task  # ran on the forked worker

    def test_background_may_block(self):
        system, app, main = make_app()
        handler = Handler(main)
        done = []

        def background(ctx):
            yield from ctx.sleep(25)
            return "late"

        task = AsyncTask("slow", background, lambda ctx, r: done.append((r, ctx.now_ms)))
        app.thread("t", lambda ctx: task.execute(ctx, handler))
        system.run()
        assert done[0][0] == "late"
        assert done[0][1] >= 25

    def test_async_task_use_after_destroy_is_detected(self):
        """The classic Android bug: the activity frees its state in
        onDestroy while an AsyncTask's onPostExecute still uses it."""
        from repro.runtime import ExternalSource

        system, app, main = make_app()
        handler = Handler(main)
        activity = app.heap.new("Activity")
        activity.fields["adapter"] = app.heap.new("Adapter")

        def background(ctx):
            yield from ctx.sleep(10)
            return "rows"

        def post_execute(ctx, result):
            ctx.use_field(activity, "adapter")

        task = AsyncTask("load", background, post_execute)
        app.thread("starter", lambda ctx: task.execute(ctx, handler))

        def on_destroy(ctx):
            ctx.put_field(activity, "adapter", None)

        user = ExternalSource("user")
        user.at(50, main, on_destroy, "onDestroy")
        user.attach(system, app)
        system.run()

        result = detect_use_free_races(system.trace())
        assert result.report_count() == 1
        assert result.reports[0].key.field == "adapter"

    def test_two_tasks_get_distinct_worker_threads(self):
        system, app, main = make_app()
        handler = Handler(main)
        task = AsyncTask("job", lambda ctx: None)

        def t(ctx):
            a = task.execute(ctx, handler)
            b = task.execute(ctx, handler)
            assert a != b

        app.thread("t", t)
        system.run()
