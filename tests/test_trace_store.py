"""The columnar trace store: append/materialize round-trips, cached
index views, the OpsView sequence protocol, memory accounting, and the
external-input validation invariant."""

import pytest

from repro.testing import TraceBuilder
from repro.trace import (
    Begin,
    BranchKind,
    End,
    OpKind,
    OpsView,
    TaskInfo,
    TaskKind,
    Trace,
    TraceError,
    TraceStore,
    trace_profile,
)
from tests.test_property_structures import operation_st

from hypothesis import given, settings


def rich_trace(columnar=True):
    """One of every interesting payload shape, on either backend."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.event("E", looper="L", external=True)
    b.begin("T")
    b.fork("T", "T2")
    b.write("T", "x", site="w:x")
    b.read("T", "x", site="r:x")
    b.acquire("T", "m")
    b.release("T", "m")
    b.send("T", "E", delay=3)
    b.end("T")
    b.begin("E")
    b.ptr_read("E", ("obj", 4, "p"), object_id=8, method="onE", pc=1)
    b.deref("E", object_id=8, method="onE", pc=2)
    b.branch("E", branch_kind=BranchKind.IF_EQZ, pc=3, target=9, object_id=8)
    b.ptr_write("E", ("obj", 4, "p"), value=None, container=4, method="onE", pc=4)
    b.ipc_call("E", txn=7, service="svc", oneway=True)
    b.end("E")
    trace = b.build()
    if columnar:
        return trace
    legacy = Trace(ops=list(trace.ops), tasks=trace.tasks, columnar=False)
    return legacy


class TestRoundTrip:
    def test_every_op_materializes_identically(self):
        columnar = rich_trace()
        legacy = rich_trace(columnar=False)
        assert len(columnar) == len(legacy)
        for i in range(len(columnar)):
            assert columnar.ops[i] == legacy.ops[i]
            assert type(columnar.ops[i]) is type(legacy.ops[i])

    @settings(max_examples=200)
    @given(operation_st)
    def test_any_single_operation_survives_the_columns(self, op):
        store = TraceStore()
        i = store.append(op)
        back = store.op(i)
        assert back == op
        assert type(back) is type(op)
        assert store.kind_of(i) is op.kind
        assert store.task_of(i) == op.task
        assert store.time_of(i) == op.time

    def test_meta_iteration_is_payload_free_and_ordered(self):
        trace = rich_trace()
        meta = list(trace.store.iter_meta())
        assert [m[0] for m in meta] == list(range(len(trace)))
        for i, kind, task, time in meta:
            op = trace.ops[i]
            assert (kind, task, time) == (op.kind, op.task, op.time)


class TestIndexViews:
    def test_ops_of_matches_legacy_scan(self):
        columnar, legacy = rich_trace(), rich_trace(columnar=False)
        for task in ("T", "E", "absent"):
            assert columnar.ops_of(task) == legacy.ops_of(task)

    def test_by_kind_matches_legacy_scan(self):
        columnar, legacy = rich_trace(), rich_trace(columnar=False)
        for kind in OpKind:
            assert columnar.by_kind(kind) == legacy.by_kind(kind)

    def test_indices_of_merges_ascending(self):
        store = rich_trace().store
        merged = store.indices_of(OpKind.BEGIN, OpKind.END, OpKind.SEND)
        assert merged == sorted(merged)
        assert merged == sorted(
            store.by_kind(OpKind.BEGIN)
            + store.by_kind(OpKind.END)
            + store.by_kind(OpKind.SEND)
        )

    def test_indices_of_absent_kinds_is_empty(self):
        assert rich_trace().store.indices_of(OpKind.JOIN, OpKind.WAIT) == []

    def test_column_exposes_raw_ids(self):
        store = rich_trace().store
        indices, col = store.column(OpKind.READ, "var")
        assert len(indices) == len(col) == 1
        assert store.symbols.value(col[0]) == "x"
        with pytest.raises(KeyError):
            store.column(OpKind.READ, "no_such_field")


class TestOpsView:
    def test_slicing_and_negative_indexing(self):
        trace = rich_trace()
        view = trace.ops
        assert isinstance(view, OpsView)
        assert view[-1] == view[len(view) - 1]
        assert view[2:5] == list(view)[2:5]
        with pytest.raises(IndexError):
            view[len(view)]

    def test_equality_against_lists_and_views(self):
        columnar, legacy = rich_trace(), rich_trace(columnar=False)
        assert columnar.ops == list(legacy.ops)
        assert not (columnar.ops != rich_trace().ops)
        assert columnar.ops != list(legacy.ops)[:-1]


class TestProfile:
    def test_backends_are_labelled(self):
        assert rich_trace().profile().backend == "columnar"
        assert rich_trace(columnar=False).profile().backend == "object"

    def test_profile_counts_and_format(self):
        trace = rich_trace()
        profile = trace.profile(disk_bytes=123)
        assert profile.ops == len(trace)
        assert profile.tasks == len(trace.tasks)
        assert profile.symbols == len(trace.store.symbols)
        assert profile.memory_bytes > 0
        text = profile.format()
        assert "columnar" in text and "on disk: 123 bytes" in text

    def test_trace_profile_free_function_matches_method(self):
        trace = rich_trace()
        assert trace_profile(trace) == trace.profile()


class TestExternalSeqValidation:
    """Satellite: duplicate ``external_seq`` values among external
    events must be rejected — a duplicate makes the external-input
    chain order ambiguous."""

    @pytest.mark.parametrize("columnar", [True, False])
    def test_duplicate_external_seq_rejected(self, columnar):
        trace = Trace(columnar=columnar)
        trace.add_task(TaskInfo(task="L", task_kind=TaskKind.LOOPER))
        for name in ("E1", "E2"):
            trace.add_task(
                TaskInfo(
                    task=name,
                    task_kind=TaskKind.EVENT,
                    looper="L",
                    queue="L.queue",
                    external=True,
                    external_seq=7,
                )
            )
        with pytest.raises(TraceError, match="share external_seq 7"):
            trace.validate()

    @pytest.mark.parametrize("columnar", [True, False])
    def test_duplicate_external_seq_error_names_colliding_ops(self, columnar):
        """The error must point at the colliding operations: each
        event's first operation index and kind (or "no operations" for
        an event never dispatched), so the offending records can be
        found in the trace without a manual scan."""
        trace = Trace(columnar=columnar)
        trace.add_task(TaskInfo(task="L", task_kind=TaskKind.LOOPER))
        for name in ("E1", "E2"):
            trace.add_task(
                TaskInfo(
                    task=name,
                    task_kind=TaskKind.EVENT,
                    looper="L",
                    queue="L.queue",
                    external=True,
                    external_seq=9,
                )
            )
        trace.append(Begin(task="E1"))
        trace.append(End(task="E1"))
        with pytest.raises(TraceError) as excinfo:
            trace.validate()
        message = str(excinfo.value)
        assert "share external_seq 9" in message
        # E1 was dispatched: its first op's index and kind are named.
        assert "'E1' (first op #0 (begin))" in message
        # E2 never ran: the message says so rather than pointing nowhere.
        assert "'E2' (no operations)" in message

    def test_distinct_external_seq_accepted(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("E1", looper="L", external=True)
        b.event("E2", looper="L", external=True)
        b.begin("E1"); b.end("E1")
        b.begin("E2"); b.end("E2")
        b.build().validate()  # distinct seqs: no error

    def test_internal_events_may_share_the_sentinel(self):
        # Non-external events all carry external_seq=-1; that is fine.
        b = TraceBuilder()
        b.looper("L")
        b.event("E1", looper="L")
        b.event("E2", looper="L")
        b.begin("E1"); b.end("E1")
        b.begin("E2"); b.end("E2")
        b.build().validate()
