"""Runtime tests: threads, fork/join, sleep, monitors, locks, deadlock."""

import pytest

from repro.runtime import AndroidSystem, DeadlockError, LockError
from repro.trace import Acquire, Fork, Join, Notify, OpKind, Release, Wait


def make_system(**kwargs):
    return AndroidSystem(seed=1, **kwargs)


class TestThreads:
    def test_plain_body_runs_to_completion(self):
        system = make_system()
        app = system.process("app")
        seen = []
        app.thread("t", lambda ctx: seen.append(ctx.now_ms))
        system.run()
        assert len(seen) == 1

    def test_begin_end_emitted_for_threads(self):
        system = make_system()
        app = system.process("app")
        app.thread("t", lambda ctx: None)
        system.run()
        trace = system.trace()
        ops = [trace[i].kind for i in trace.ops_of("app/t")]
        assert ops == [OpKind.BEGIN, OpKind.END]

    def test_fork_creates_running_child_with_fork_record(self):
        system = make_system()
        app = system.process("app")
        results = []

        def child(ctx):
            results.append("child")

        def parent(ctx):
            ctx.fork("child", child)

        app.thread("parent", parent)
        system.run()
        assert results == ["child"]
        trace = system.trace()
        forks = [op for op in trace if isinstance(op, Fork)]
        assert len(forks) == 1
        assert forks[0].child == "app/child"

    def test_join_returns_child_result(self):
        system = make_system()
        app = system.process("app")
        got = []

        def child(ctx):
            return 41

        def parent(ctx):
            tid = ctx.fork("child", child)
            value = yield from ctx.join(tid)
            got.append(value)

        app.thread("parent", parent)
        system.run()
        assert got == [41]
        trace = system.trace()
        assert any(isinstance(op, Join) for op in trace)

    def test_join_ordering_child_end_before_join_record(self):
        system = make_system()
        app = system.process("app")

        def child(ctx):
            ctx.write("x", 1)

        def parent(ctx):
            tid = ctx.fork("child", child)
            yield from ctx.join(tid)
            ctx.read("x")

        app.thread("parent", parent)
        system.run()
        trace = system.trace()
        join_index = next(i for i, op in enumerate(trace) if isinstance(op, Join))
        child_end = max(trace.ops_of("app/child"))
        assert child_end < join_index

    def test_sleep_advances_virtual_time(self):
        system = make_system()
        app = system.process("app")
        times = []

        def body(ctx):
            yield from ctx.sleep(25)
            times.append(ctx.now_ms)

        app.thread("t", body)
        system.run()
        assert times[0] >= 25

    def test_two_root_threads_both_run(self):
        system = make_system()
        app = system.process("app")
        seen = []
        app.thread("a", lambda ctx: seen.append("a"))
        app.thread("b", lambda ctx: seen.append("b"))
        system.run()
        assert sorted(seen) == ["a", "b"]

    def test_scheduler_seed_determinism(self):
        def trace_of(seed):
            system = AndroidSystem(seed=seed)
            app = system.process("app")
            for name in ("a", "b", "c"):
                def body(ctx, name=name):
                    ctx.write("who", name)
                app.thread(name, body)
            system.run()
            return [(op.task, op.kind.value) for op in system.trace()]

        assert trace_of(3) == trace_of(3)


class TestMonitors:
    def test_wait_blocks_until_notify(self):
        system = make_system()
        app = system.process("app")
        order = []

        def waiter(ctx):
            yield from ctx.wait("mon")
            order.append("woke")

        def notifier(ctx):
            yield from ctx.sleep(10)
            order.append("notify")
            ctx.notify("mon")

        app.thread("w", waiter)
        app.thread("n", notifier)
        system.run()
        assert order == ["notify", "woke"]

    def test_tickets_pair_notify_with_wait(self):
        system = make_system()
        app = system.process("app")

        def waiter(ctx):
            yield from ctx.wait("mon")

        def notifier(ctx):
            yield from ctx.sleep(5)
            ctx.notify("mon")

        app.thread("w", waiter)
        app.thread("n", notifier)
        system.run()
        trace = system.trace()
        notify = next(op for op in trace if isinstance(op, Notify))
        wait = next(op for op in trace if isinstance(op, Wait))
        assert notify.ticket == wait.ticket >= 0

    def test_notify_all_wakes_every_waiter(self):
        system = make_system()
        app = system.process("app")
        woken = []

        def make_waiter(name):
            def body(ctx):
                yield from ctx.wait("mon")
                woken.append(name)
            return body

        for name in ("w1", "w2", "w3"):
            app.thread(name, make_waiter(name))

        def notifier(ctx):
            yield from ctx.sleep(5)
            ctx.notify_all("mon")

        app.thread("n", notifier)
        system.run()
        assert sorted(woken) == ["w1", "w2", "w3"]

    def test_single_notify_wakes_one_waiter(self):
        system = make_system()
        app = system.process("app")
        woken = []

        def make_waiter(name):
            def body(ctx):
                yield from ctx.wait("mon")
                woken.append(name)
            return body

        app.thread("w1", make_waiter("w1"))
        app.thread("w2", make_waiter("w2"))

        def notifier(ctx):
            yield from ctx.sleep(5)
            ctx.notify("mon")
            yield from ctx.sleep(5)
            ctx.notify("mon")

        app.thread("n", notifier)
        system.run()
        assert sorted(woken) == ["w1", "w2"]

    def test_wait_without_notify_deadlocks(self):
        system = make_system()
        app = system.process("app")

        def waiter(ctx):
            yield from ctx.wait("mon")

        app.thread("w", waiter)
        with pytest.raises(DeadlockError, match="app/w"):
            system.run()


class TestLocks:
    def test_mutual_exclusion(self):
        system = make_system()
        app = system.process("app")
        events = []

        def body(ctx, name):
            yield from ctx.acquire("lk")
            events.append((name, "in"))
            yield from ctx.pause()
            events.append((name, "out"))
            ctx.release("lk")

        app.thread("a", lambda ctx: (yield from body(ctx, "a")))
        app.thread("b", lambda ctx: (yield from body(ctx, "b")))
        system.run()
        # critical sections never interleave
        assert events[0][0] == events[1][0]
        assert events[2][0] == events[3][0]

    def test_acquire_release_records_emitted(self):
        system = make_system()
        app = system.process("app")

        def body(ctx):
            yield from ctx.acquire("lk")
            ctx.release("lk")

        app.thread("t", body)
        system.run()
        trace = system.trace()
        assert any(isinstance(op, Acquire) for op in trace)
        assert any(isinstance(op, Release) for op in trace)

    def test_release_of_unheld_lock_raises(self):
        system = make_system()
        app = system.process("app")
        app.thread("t", lambda ctx: ctx.release("lk"))
        with pytest.raises(LockError):
            system.run()

    def test_blocked_acquire_deadlocks_if_never_released(self):
        system = make_system()
        app = system.process("app")

        def holder(ctx):
            yield from ctx.acquire("lk")
            yield from ctx.wait("never")

        def contender(ctx):
            yield from ctx.sleep(5)
            yield from ctx.acquire("lk")

        app.thread("h", holder)
        app.thread("c", contender)
        with pytest.raises(DeadlockError):
            system.run()

    def test_lock_must_be_released_by_acquiring_task(self):
        """Critical sections must not span task boundaries; the offline
        lockset reconstruction depends on it."""
        system = make_system()
        app = system.process("app")
        main = app.looper("main")

        # Both events run on the SAME looper frame, but they are
        # different tasks: acquiring in one and releasing in the other
        # must be rejected.
        def locker(ctx):
            yield from ctx.acquire("lk")

        def releaser(ctx):
            ctx.release("lk")

        def driver(ctx):
            ctx.post(main, locker, label="lock_event")
            ctx.post(main, releaser, label="release_event")

        app.thread("t", driver)
        with pytest.raises(LockError, match="task"):
            system.run()

    def test_release_from_another_frame_rejected(self):
        system = make_system()
        app = system.process("app")

        def holder(ctx):
            yield from ctx.acquire("lk")
            yield from ctx.sleep(5)  # let the thief reach its wait
            ctx.notify("held")

        def thief(ctx):
            yield from ctx.wait("held")
            ctx.release("lk")

        app.thread("h", holder)
        app.thread("thief", thief)
        with pytest.raises(LockError, match="releasing lock"):
            system.run()
