"""Tests for array instructions (a-get/a-put and their object forms)."""

import pytest

from repro.detect import detect_use_free_races
from repro.dvm import (
    CollectingSink,
    DvmError,
    DvmNullPointerError,
    Heap,
    Interpreter,
    MethodBuilder,
    Program,
)
from repro.dvm.disassembler import disassemble_instruction
from repro.dvm.heap import HeapArray
from repro.dvm.instructions import AGetObject, APutObject, NewArray


def make_interp(*methods):
    program = Program()
    for m in methods:
        program.add_method(m)
    heap = Heap()
    sink = CollectingSink()
    return Interpreter(program, heap, sink), heap, sink


class TestHeapArrays:
    def test_new_array_initialized_to_null(self):
        heap = Heap()
        arr = heap.new_array(3)
        assert arr.length == 3
        assert all(arr.fields[i] is None for i in range(3))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Heap().new_array(-1)

    def test_arrays_share_the_object_id_space(self):
        heap = Heap()
        obj = heap.new("C")
        arr = heap.new_array(1)
        assert arr.object_id == obj.object_id + 1
        assert isinstance(heap.get(arr.object_id), HeapArray)


class TestArrayInstructions:
    def test_scalar_round_trip(self):
        m = (
            MethodBuilder("m")
            .const(0, 4)
            .new_array(1, 0)        # v1 = new int[4]
            .const(2, 2)            # index
            .const(3, 99)
            .aput(3, 1, 2)
            .aget(4, 1, 2)
            .return_value(4)
            .build()
        )
        interp, _, sink = make_interp(m)
        assert interp.invoke("m") == 99
        assert len(sink.of_kind("read")) == 1
        assert len(sink.of_kind("write")) == 1

    def test_object_slot_write_and_read_logged(self):
        m = (
            MethodBuilder("m")
            .const(0, 2)
            .new_array(1, 0)
            .const(2, 0)
            .new_instance(3, "Item")
            .aput_object(3, 1, 2)
            .aget_object(4, 1, 2)
            .return_value(4)
            .build()
        )
        interp, heap, sink = make_interp(m)
        item = interp.invoke("m")
        assert item.cls == "Item"
        (write,) = sink.of_kind("ptr_write")
        (read,) = sink.of_kind("ptr_read")
        assert write[1] == read[1]  # same slot address
        assert write[1][2] == 0  # index 0

    def test_null_store_is_a_free(self):
        m = (
            MethodBuilder("m")
            .const(0, 1)
            .new_array(1, 0)
            .const(2, 0)
            .const_null(3)
            .aput_object(3, 1, 2)
            .return_void()
            .build()
        )
        interp, _, sink = make_interp(m)
        interp.invoke("m")
        (write,) = sink.of_kind("ptr_write")
        assert write[2] is None  # free

    def test_out_of_bounds_raises(self):
        m = (
            MethodBuilder("m")
            .const(0, 1)
            .new_array(1, 0)
            .const(2, 5)
            .aget(3, 1, 2)
            .return_void()
            .build()
        )
        interp, _, _ = make_interp(m)
        with pytest.raises(DvmError, match="out of bounds"):
            interp.invoke("m")

    def test_null_array_raises_npe(self):
        m = (
            MethodBuilder("m")
            .const_null(1)
            .const(2, 0)
            .aget(3, 1, 2)
            .return_void()
            .build()
        )
        interp, _, _ = make_interp(m)
        with pytest.raises(DvmNullPointerError):
            interp.invoke("m")

    def test_array_access_on_plain_object_rejected(self):
        m = (
            MethodBuilder("m")
            .new_instance(1, "C")
            .const(2, 0)
            .aget(3, 1, 2)
            .return_void()
            .build()
        )
        interp, _, _ = make_interp(m)
        with pytest.raises(DvmError, match="non-array"):
            interp.invoke("m")

    def test_disassembly(self):
        assert disassemble_instruction(NewArray(1, 0)) == "new-array v1, v0"
        assert disassemble_instruction(AGetObject(2, 1, 0)) == "aget-object v2, v1, v0"
        assert disassemble_instruction(APutObject(2, 1, 0)) == "aput-object v2, v1, v0"


class TestArraySlotRaces:
    def test_use_free_race_on_an_array_slot(self):
        """The detector treats array slots like any other pointer slot
        (the paper's a-put-object free)."""
        from repro.runtime import AndroidSystem, ExternalSource

        system = AndroidSystem(seed=4)
        app = system.process("app")
        main = app.looper("main")

        use = (
            MethodBuilder("Cache.lookup", params=1)
            .const(1, 0)
            .aget_object(2, 0, 1)           # the pointer read
            .invoke("Entry.render", receiver=2)
            .return_void()
            .build()
        )
        free = (
            MethodBuilder("Cache.evict", params=1)
            .const(1, 0)
            .const_null(2)
            .aput_object(2, 0, 1)           # the free
            .return_void()
            .build()
        )
        app.program.add_method(use)
        app.program.add_method(free)
        app.program.add_intrinsic("Entry.render", lambda args: None)
        cache = app.heap.new_array(2)
        cache.fields[0] = app.heap.new("Entry")

        def use_event(ctx):
            ctx.call_method("Cache.lookup", [cache])

        def free_event(ctx):
            ctx.call_method("Cache.evict", [cache])

        def poster(ctx):
            yield from ctx.sleep(10)
            ctx.post(main, use_event, label="lookupEvent")

        app.thread("poster", poster)
        src = ExternalSource("gc")
        src.at(40, main, free_event, "evictEvent")
        src.attach(system, app)
        system.run(max_ms=1000)

        result = detect_use_free_races(system.trace())
        assert result.report_count() == 1
        key = result.reports[0].key
        assert key.use_method == "Cache.lookup"
        assert key.free_method == "Cache.evict"
        assert key.field == "0"  # slot index
