"""Unit tests for the Trace container and its validation."""

import pytest

from repro.testing import TraceBuilder
from repro.trace import (
    Begin,
    End,
    Read,
    TaskInfo,
    TaskKind,
    Trace,
    TraceError,
)


def _thread_info(task):
    return TaskInfo(task=task, task_kind=TaskKind.THREAD)


def _event_info(task, looper="L"):
    return TaskInfo(task=task, task_kind=TaskKind.EVENT, looper=looper, queue="Q")


class TestTraceBasics:
    def test_append_returns_increasing_indices(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        assert trace.append(Begin(task="t")) == 0
        assert trace.append(End(task="t")) == 1

    def test_duplicate_task_rejected(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        with pytest.raises(TraceError):
            trace.add_task(_thread_info("t"))

    def test_ops_of_filters_by_task(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.read("t", "x")
        b.end("u")
        b.end("t")
        trace = b.build()
        ops = trace.ops_of("t")
        assert [trace[i].kind.value for i in ops] == ["begin", "rd", "end"]

    def test_external_events_sorted_by_generation_order(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("e1", looper="L", external=True)
        b.event("e2", looper="L", external=True)
        b.event("e3", looper="L")
        b.begin("e1"); b.end("e1")
        b.begin("e2"); b.end("e2")
        b.begin("e3"); b.end("e3")
        trace = b.build()
        assert trace.external_events() == ["e1", "e2"]

    def test_info_raises_on_unknown_task(self):
        with pytest.raises(TraceError):
            Trace().info("missing")


class TestValidation:
    def test_valid_trace_passes(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.read("t", "x")
        b.end("t")
        b.build()  # validates

    def test_unknown_task_rejected(self):
        trace = Trace()
        trace.append(Begin(task="ghost"))
        with pytest.raises(TraceError, match="unknown task"):
            trace.validate()

    def test_op_before_begin_rejected(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        trace.append(Read(task="t", var="x"))
        with pytest.raises(TraceError, match="precedes its begin"):
            trace.validate()

    def test_op_after_end_rejected(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        trace.append(Begin(task="t"))
        trace.append(End(task="t", time=1))
        trace.append(Read(task="t", var="x", time=2))
        with pytest.raises(TraceError, match="follows its end"):
            trace.validate()

    def test_double_begin_rejected(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        trace.append(Begin(task="t"))
        trace.append(Begin(task="t", time=1))
        with pytest.raises(TraceError, match="begins twice"):
            trace.validate()

    def test_decreasing_time_rejected(self):
        trace = Trace()
        trace.add_task(_thread_info("t"))
        trace.append(Begin(task="t", time=5))
        trace.append(End(task="t", time=3))
        with pytest.raises(TraceError, match="precedes previous time"):
            trace.validate()

    def test_overlapping_events_on_one_looper_rejected(self):
        """Looper event atomicity (Section 2.1) is a trace invariant."""
        trace = Trace()
        trace.add_task(_event_info("e1"))
        trace.add_task(_event_info("e2"))
        trace.append(Begin(task="e1"))
        trace.append(Begin(task="e2", time=1))
        with pytest.raises(TraceError, match="still open"):
            trace.validate()

    def test_interleaved_events_on_different_loopers_allowed(self):
        trace = Trace()
        trace.add_task(_event_info("e1", looper="L1"))
        trace.add_task(_event_info("e2", looper="L2"))
        trace.append(Begin(task="e1"))
        trace.append(Begin(task="e2", time=1))
        trace.append(End(task="e1", time=2))
        trace.append(End(task="e2", time=3))
        trace.validate()
