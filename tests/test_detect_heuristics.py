"""Tests for the if-guard and intra-event-allocation heuristics."""

import sys

import pytest

from repro.detect import (
    branch_safe_region,
    extract_accesses,
    free_has_intra_event_realloc,
    use_has_intra_event_alloc,
    use_is_guarded,
)
from repro.testing import TraceBuilder
from repro.trace import BranchKind

ADDR = ("obj", 1, "handler")
END = sys.maxsize


class TestSafeRegions:
    """The four Figure 6 cases."""

    def test_if_eqz_forward(self):
        assert branch_safe_region(BranchKind.IF_EQZ, pc=5, target=9) == (6, 9)

    def test_if_eqz_backward(self):
        assert branch_safe_region(BranchKind.IF_EQZ, pc=5, target=2) == (6, END)

    def test_if_nez_forward(self):
        assert branch_safe_region(BranchKind.IF_NEZ, pc=5, target=9) == (9, END)

    def test_if_nez_backward(self):
        assert branch_safe_region(BranchKind.IF_NEZ, pc=5, target=2) == (2, 5)

    def test_if_eq_behaves_like_if_nez(self):
        assert branch_safe_region(BranchKind.IF_EQ, pc=5, target=9) == (
            branch_safe_region(BranchKind.IF_NEZ, pc=5, target=9)
        )


def build_use(guarded, branch_kind=BranchKind.IF_EQZ, deref_pc=2, branch_pc=1,
              target=3, guard_method="m", deref_first=False):
    """A single-task trace: read p; [branch]; deref p."""
    b = TraceBuilder()
    b.thread("t")
    b.begin("t")
    b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
    if guarded and deref_first:
        b.deref("t", object_id=9, method="m", pc=deref_pc)
        b.branch("t", branch_kind, pc=branch_pc, target=target, object_id=9,
                 method=guard_method)
    else:
        if guarded:
            b.branch("t", branch_kind, pc=branch_pc, target=target, object_id=9,
                     method=guard_method)
        b.deref("t", object_id=9, method="m", pc=deref_pc)
    b.end("t")
    index = extract_accesses(b.build())
    (use,) = index.uses
    return index, use


class TestIfGuardCheck:
    def test_guarded_use_is_safe(self):
        index, use = build_use(guarded=True)
        assert use_is_guarded(index, use)

    def test_unguarded_use_is_unsafe(self):
        index, use = build_use(guarded=False)
        assert not use_is_guarded(index, use)

    def test_deref_outside_region_is_unsafe(self):
        index, use = build_use(guarded=True, deref_pc=7, target=3)
        assert not use_is_guarded(index, use)

    def test_guard_must_execute_before_the_deref(self):
        index, use = build_use(guarded=True, deref_first=True)
        assert not use_is_guarded(index, use)

    def test_guard_in_other_method_does_not_apply(self):
        """pc intervals are only meaningful within one method."""
        index, use = build_use(guarded=True, guard_method="other")
        assert not use_is_guarded(index, use)

    def test_backward_if_nez_covers_loop_body(self):
        index, use = build_use(
            guarded=True, branch_kind=BranchKind.IF_NEZ,
            branch_pc=6, target=1, deref_pc=2,
        )
        assert use_is_guarded(index, use)

    def test_guard_on_other_pointer_does_not_apply(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.ptr_read("t", ("obj", 2, "q"), object_id=4, method="m", pc=1)
        b.branch("t", BranchKind.IF_EQZ, pc=2, target=5, object_id=4, method="m")
        b.deref("t", object_id=9, method="m", pc=3)
        b.end("t")
        index = extract_accesses(b.build())
        use = next(u for u in index.uses if u.address == ADDR)
        assert not use_is_guarded(index, use)

    def test_every_deref_must_be_covered(self):
        """One guarded and one unguarded deref of the same read: unsafe."""
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.branch("t", BranchKind.IF_EQZ, pc=1, target=3, object_id=9, method="m")
        b.deref("t", object_id=9, method="m", pc=2)   # inside region
        b.deref("t", object_id=9, method="m", pc=9)   # outside region
        b.end("t")
        index = extract_accesses(b.build())
        (use,) = index.uses
        assert not use_is_guarded(index, use)


class TestIntraEventAllocation:
    def _index(self, ops):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        for op in ops:
            op(b)
        b.end("t")
        b.end("u")
        return extract_accesses(b.build())

    def test_realloc_after_free_filters_the_free(self):
        index = self._index([
            lambda b: b.ptr_write("t", ADDR, value=None, method="m", pc=0),
            lambda b: b.ptr_write("t", ADDR, value=7, method="m", pc=1),
        ])
        (free,) = index.frees
        assert free_has_intra_event_realloc(index, free)

    def test_no_realloc_keeps_the_free(self):
        index = self._index([
            lambda b: b.ptr_write("t", ADDR, value=None, method="m", pc=0),
        ])
        (free,) = index.frees
        assert not free_has_intra_event_realloc(index, free)

    def test_realloc_in_other_task_does_not_filter(self):
        index = self._index([
            lambda b: b.ptr_write("t", ADDR, value=None, method="m", pc=0),
            lambda b: b.ptr_write("u", ADDR, value=7, method="m", pc=1),
        ])
        (free,) = index.frees
        assert not free_has_intra_event_realloc(index, free)

    def test_alloc_before_use_filters_the_use(self):
        index = self._index([
            lambda b: b.ptr_write("t", ADDR, value=9, method="m", pc=0),
            lambda b: b.ptr_read("t", ADDR, object_id=9, method="m", pc=1),
            lambda b: b.deref("t", object_id=9, method="m", pc=2),
        ])
        (use,) = index.uses
        assert use_has_intra_event_alloc(index, use)

    def test_alloc_after_use_does_not_filter(self):
        index = self._index([
            lambda b: b.ptr_read("t", ADDR, object_id=9, method="m", pc=0),
            lambda b: b.deref("t", object_id=9, method="m", pc=1),
            lambda b: b.ptr_write("t", ADDR, value=9, method="m", pc=2),
        ])
        (use,) = index.uses
        assert not use_has_intra_event_alloc(index, use)

    def test_alloc_to_other_address_does_not_filter(self):
        index = self._index([
            lambda b: b.ptr_write("t", ("obj", 2, "q"), value=9, method="m", pc=0),
            lambda b: b.ptr_read("t", ADDR, object_id=9, method="m", pc=1),
            lambda b: b.deref("t", object_id=9, method="m", pc=2),
        ])
        (use,) = index.uses
        assert not use_has_intra_event_alloc(index, use)
