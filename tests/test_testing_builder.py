"""Tests for the TraceBuilder DSL itself."""

import pytest

from repro.testing import TraceBuilder
from repro.trace import OpKind, TaskKind, TraceError


class TestDeclarations:
    def test_event_defaults_queue_to_looper_queue(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("E", looper="L")
        b.begin("E"); b.end("E")
        trace = b.build()
        assert trace.info("E").queue == "L.queue"

    def test_event_explicit_queue(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("E", looper="L", queue="custom")
        b.begin("E"); b.end("E")
        assert b.build().info("E").queue == "custom"

    def test_external_events_numbered_in_declaration_order(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("E1", looper="L", external=True)
        b.event("E2", looper="L", external=True)
        b.begin("E1"); b.end("E1")
        b.begin("E2"); b.end("E2")
        trace = b.build()
        assert trace.info("E1").external_seq < trace.info("E2").external_seq

    def test_duplicate_task_rejected(self):
        b = TraceBuilder()
        b.thread("t")
        with pytest.raises(TraceError):
            b.thread("t")

    def test_task_kinds_recorded(self):
        b = TraceBuilder()
        b.thread("t")
        b.looper("L")
        b.event("E", looper="L")
        b.begin("t"); b.end("t")
        b.begin("E"); b.end("E")
        trace = b.build()
        assert trace.info("t").task_kind is TaskKind.THREAD
        assert trace.info("L").task_kind is TaskKind.LOOPER
        assert trace.info("E").task_kind is TaskKind.EVENT


class TestOperations:
    def test_methods_return_op_indices(self):
        b = TraceBuilder()
        b.thread("t")
        assert b.begin("t") == 0
        assert b.read("t", "x") == 1
        assert b.end("t") == 2

    def test_times_strictly_increase(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.read("t", "x")
        b.write("t", "x")
        b.end("t")
        trace = b.build()
        times = [op.time for op in trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_send_fills_in_declared_queue(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("t")
        b.event("E", looper="L")
        b.begin("t")
        i = b.send("t", "E", delay=4)
        b.end("t")
        b.begin("E"); b.end("E")
        trace = b.build()
        assert trace[i].queue == "L.queue"
        assert trace[i].delay == 4

    def test_default_sites_derived_from_var(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        i = b.read("t", "x")
        b.end("t")
        assert "x" in b.build()[i].site

    def test_validation_on_build_by_default(self):
        b = TraceBuilder()
        b.thread("t")
        b.read("t", "x")  # before begin
        with pytest.raises(TraceError):
            b.build()

    def test_validation_can_be_skipped(self):
        b = TraceBuilder()
        b.thread("t")
        b.read("t", "x")
        trace = b.build(validate=False)
        assert len(trace) == 1

    def test_method_records(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        i = b.method_enter("t", "m", return_pc=3)
        j = b.method_exit("t", "m", return_pc=3, via_exception=True)
        b.end("t")
        trace = b.build()
        assert trace[i].kind is OpKind.METHOD_ENTER
        assert trace[j].via_exception is True

    def test_ticket_counter_monotonic(self):
        b = TraceBuilder()
        assert b.next_ticket() < b.next_ticket()
