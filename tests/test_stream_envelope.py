"""The session-frame envelope (cafa-mux): frame round-trips, the
single-session ``AnyTraceDecoder`` path, and the demux property —
arbitrary interleavings of session frames decode to per-session traces
identical to separate decodes (v1, v2, and v3 payloads)."""

import random

import pytest

from repro.testing import TraceBuilder
from repro.trace import (
    AnyTraceDecoder,
    MUX_MAGIC,
    MuxDecoder,
    SessionDemuxer,
    TraceError,
    TraceFormatError,
    dumps_trace,
    dumps_trace_bytes,
    encode_data_frame,
    encode_end_frame,
    encode_finish_frame,
    encode_mux_header,
    encode_session,
    loads_trace,
)


def make_trace(spin: int):
    """A small but non-trivial trace; ``spin`` varies the content so
    sessions in one mux stream are distinguishable."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.event("E", looper="L", external=True)
    b.begin("T")
    for i in range(spin + 1):
        b.write("T", f"x{i}", site=f"s{spin}")
    b.send("T", "E", delay=spin)
    b.end("T")
    b.begin("E")
    b.ptr_read("E", ("obj", 4 + spin, "p"), object_id=8, method="onE", pc=1)
    b.ptr_write(
        "E", ("obj", 4 + spin, "p"), value=None, container=4, method="onE", pc=2
    )
    b.end("E")
    return b.build()


def serialized(trace, version: int) -> bytes:
    return dumps_trace_bytes(trace, version=version)


def canonical(trace) -> str:
    """Comparable rendering: the v2 re-serialization of a trace."""
    return dumps_trace(trace)


class TestFrameRoundTrip:
    def test_encode_session_decodes_to_the_same_payload(self):
        payload = bytes(range(256)) * 5
        decoder = MuxDecoder()
        events = decoder.feed(
            encode_mux_header()
            + b"".join(encode_session("dev-1", payload, chunk_size=97))
        )
        assert events[-1] == ("end", "dev-1")
        assert b"".join(e[2] for e in events[:-1]) == payload
        decoder.flush()
        assert not decoder.degraded

    def test_any_chunking_yields_the_same_events(self):
        payload = b"hello cafa" * 40
        stream = (
            encode_mux_header()
            + b"".join(encode_session("s", payload, chunk_size=64))
            + encode_finish_frame()
        )
        whole = MuxDecoder().feed(stream)
        for step in (1, 3, 7, len(stream)):
            decoder = MuxDecoder()
            events = []
            for i in range(0, len(stream), step):
                events.extend(decoder.feed(stream[i : i + step]))
            assert events == whole
            assert decoder.finished

    def test_bad_magic_is_a_hard_error(self):
        with pytest.raises(TraceError, match="envelope magic"):
            MuxDecoder().feed(b"\x9e" + b"not the magic here!")

    def test_truncated_frame_is_ruled_at_flush(self):
        decoder = MuxDecoder()
        frame = encode_data_frame("s", b"payload bytes")
        decoder.feed(encode_mux_header() + frame[:-4])
        with pytest.raises(TraceFormatError, match="dangling"):
            decoder.flush()

    def test_salvage_mode_records_damage_instead_of_raising(self):
        decoder = MuxDecoder(strict=False)
        stream = encode_mux_header() + encode_data_frame("s", b"ok") + b"\xff"
        events = decoder.feed(stream)
        assert [e[0] for e in events] == ["data"]
        assert decoder.degraded
        assert "unknown mux frame tag" in str(decoder.error)

    def test_bytes_after_finish_are_damage(self):
        decoder = MuxDecoder()
        decoder.feed(encode_mux_header() + encode_finish_frame())
        with pytest.raises(TraceFormatError, match="after the mux FINISH"):
            decoder.feed(encode_data_frame("s", b"late"))

    def test_empty_session_id_rejected(self):
        with pytest.raises(TraceError, match="non-empty"):
            encode_data_frame("", b"x")


class TestSingleSessionDecoder:
    """AnyTraceDecoder sniffs the envelope from the first byte and
    unwraps single-session streams transparently."""

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_enveloped_equals_plain(self, version):
        trace = make_trace(0)
        payload = serialized(trace, version)
        stream = encode_mux_header() + b"".join(
            encode_session("device-7", payload, chunk_size=113)
        )
        decoder = AnyTraceDecoder()
        for i in range(0, len(stream), 50):
            decoder.feed(stream[i : i + 50])
        back = decoder.finish()
        assert canonical(back) == canonical(loads_trace(payload))
        assert decoder.multiplexed
        assert decoder.session == "device-7"

    def test_loads_trace_accepts_enveloped_bytes(self):
        trace = make_trace(1)
        payload = serialized(trace, 2)
        stream = encode_mux_header() + b"".join(
            encode_session("one", payload)
        )
        assert canonical(loads_trace(stream)) == canonical(trace)

    def test_two_sessions_point_at_the_daemon(self):
        a = serialized(make_trace(0), 2)
        b = serialized(make_trace(1), 2)
        stream = (
            encode_mux_header()
            + encode_data_frame("a", a)
            + encode_data_frame("b", b)
        )
        decoder = AnyTraceDecoder()
        with pytest.raises(TraceError, match="repro serve"):
            decoder.feed(stream)


def interleave(rng, per_session_frames):
    """One arbitrary interleaving: merge the sessions' frame lists,
    preserving each session's own frame order."""
    cursors = {sid: 0 for sid in per_session_frames}
    out = []
    while cursors:
        sid = rng.choice(sorted(cursors))
        frames = per_session_frames[sid]
        out.append(frames[cursors[sid]])
        cursors[sid] += 1
        if cursors[sid] == len(frames):
            del cursors[sid]
    return out


class TestDemuxProperty:
    """The satellite property: for arbitrary record interleavings
    across sessions, demuxed per-session traces are identical to
    separate decodes — for every trace format version."""

    @pytest.mark.parametrize("version", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleavings_decode_like_separate_streams(self, version, seed):
        rng = random.Random(seed * 31 + version)
        sessions = {f"dev-{k}": make_trace(k) for k in range(3)}
        payloads = {
            sid: serialized(trace, version)
            for sid, trace in sessions.items()
        }
        frames = {
            sid: encode_session(
                sid, payload, chunk_size=rng.randrange(7, 200)
            )
            for sid, payload in payloads.items()
        }
        stream = encode_mux_header() + b"".join(interleave(rng, frames))
        demux = SessionDemuxer()
        pos = 0
        while pos < len(stream):
            step = rng.randrange(1, 500)
            demux.feed(stream[pos : pos + step])
            pos += step
        traces = demux.finish()
        assert sorted(traces) == sorted(sessions)
        for sid, payload in payloads.items():
            assert canonical(traces[sid]) == canonical(loads_trace(payload))

    def test_sessions_may_mix_format_versions(self):
        rng = random.Random(17)
        payloads = {
            "text1": serialized(make_trace(0), 1),
            "text2": serialized(make_trace(1), 2),
            "binary": serialized(make_trace(2), 3),
        }
        frames = {
            sid: encode_session(sid, payload, chunk_size=128)
            for sid, payload in payloads.items()
        }
        stream = encode_mux_header() + b"".join(interleave(rng, frames))
        demux = SessionDemuxer()
        demux.feed(stream)
        traces = demux.finish()
        for sid, payload in payloads.items():
            assert canonical(traces[sid]) == canonical(loads_trace(payload))

    def test_frame_after_end_is_rejected(self):
        payload = serialized(make_trace(0), 2)
        demux = SessionDemuxer()
        demux.feed(
            encode_mux_header() + b"".join(encode_session("s", payload))
        )
        with pytest.raises(TraceFormatError, match="after its END"):
            demux.feed(encode_data_frame("s", b"{}"))
