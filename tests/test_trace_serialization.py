"""Tests for the JSONL trace serialization."""

import io

import pytest

from repro.testing import TraceBuilder
from repro.trace import (
    TraceError,
    dump_trace,
    dumps_trace,
    load_trace,
    load_trace_file,
    loads_trace,
    save_trace_file,
)


def sample_trace():
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.event("E", looper="L", external=True)
    b.begin("T")
    b.send("T", "E", delay=3)
    b.write("T", "x")
    b.notify("T", "mon", ticket=2)
    b.end("T")
    b.begin("E")
    b.ptr_read("E", ("obj", 4, "p"), object_id=8, method="onE", pc=1)
    b.deref("E", object_id=8, method="onE", pc=2)
    b.ptr_write("E", ("obj", 4, "p"), value=None, container=4, method="onE", pc=3)
    b.end("E")
    return b.build()


class TestRoundTrip:
    def test_ops_round_trip_exactly(self):
        trace = sample_trace()
        back = loads_trace(dumps_trace(trace))
        assert back.ops == trace.ops

    def test_task_table_round_trips(self):
        trace = sample_trace()
        back = loads_trace(dumps_trace(trace))
        assert set(back.tasks) == set(trace.tasks)
        for task in trace.tasks:
            assert back.tasks[task].to_dict() == trace.tasks[task].to_dict()

    def test_round_tripped_trace_still_validates(self):
        loads_trace(dumps_trace(sample_trace())).validate()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = sample_trace()
        save_trace_file(trace, path)
        back = load_trace_file(path)
        assert back.ops == trace.ops

    def test_v1_format_is_line_oriented_json(self):
        text = dumps_trace(sample_trace(), version=1)
        lines = text.strip().split("\n")
        assert len(lines) == 1 + 3 + len(sample_trace())  # header + tasks + ops

    def test_v2_format_is_line_oriented_json(self):
        trace = sample_trace()
        text = dumps_trace(trace)
        lines = text.strip().split("\n")
        # header + tasks + ops + one definition line per distinct
        # symbol/address
        assert len(lines) > 1 + 3 + len(trace)
        import json

        tags = [type(json.loads(line)) for line in lines]
        assert tags[0] is dict
        assert all(t in (dict, list) for t in tags)

    def test_empty_trace_round_trips(self):
        from repro.trace import Trace

        back = loads_trace(dumps_trace(Trace()))
        assert len(back) == 0 and back.tasks == {}


class TestErrors:
    def test_empty_stream_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            load_trace(io.StringIO(""))

    def test_wrong_format_rejected(self):
        with pytest.raises(TraceError, match="not a cafa-trace"):
            load_trace(io.StringIO('{"format": "something-else"}\n'))

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceError, match="version"):
            load_trace(io.StringIO('{"format": "cafa-trace", "version": 99}\n'))

    def test_unknown_record_rejected(self):
        text = '{"format": "cafa-trace", "version": 1}\n{"mystery": 1}\n'
        with pytest.raises(TraceError, match="unrecognized"):
            load_trace(io.StringIO(text))

    def test_truncated_stream_detected(self):
        text = dumps_trace(sample_trace())
        lines = text.strip().split("\n")
        truncated = "\n".join(lines[:-2]) + "\n"
        with pytest.raises(TraceError, match="mismatch"):
            load_trace(io.StringIO(truncated))

    def test_blank_lines_tolerated(self):
        text = dumps_trace(sample_trace()).replace("\n", "\n\n")
        back = loads_trace(text)
        assert len(back) == len(sample_trace())
