"""Unit tests for the method builder / assembler."""

import pytest

from repro.dvm import (
    AssemblyError,
    Goto,
    IfEqz,
    Method,
    MethodBuilder,
    Program,
)


class TestLabels:
    def test_forward_label_resolution(self):
        m = (
            MethodBuilder("m")
            .goto("end")
            .const(0, 1)
            .label("end")
            .return_void()
            .build()
        )
        assert isinstance(m.code[0], Goto)
        assert m.code[0].target == 2

    def test_backward_label_resolution(self):
        m = (
            MethodBuilder("m")
            .label("head")
            .const(0, 1)
            .if_eqz(0, "head")
            .return_void()
            .build()
        )
        assert isinstance(m.code[1], IfEqz)
        assert m.code[1].target == 0

    def test_unresolved_label_raises(self):
        b = MethodBuilder("m").goto("missing")
        with pytest.raises(AssemblyError, match="unresolved label"):
            b.build()

    def test_duplicate_label_raises(self):
        b = MethodBuilder("m").label("x").const(0, 1)
        with pytest.raises(AssemblyError, match="duplicate label"):
            b.label("x")

    def test_numeric_targets_pass_through(self):
        m = MethodBuilder("m").goto(1).return_void().build()
        assert m.code[0].target == 1

    def test_catch_label_resolution(self):
        b = MethodBuilder("m")
        b.const(0, 1)
        b.return_void()
        b.label("handler")
        b.return_void()
        b.catch_npe("handler")
        m = b.build()
        assert m.catch_npe_target == 2

    def test_unresolved_catch_label_raises(self):
        b = MethodBuilder("m").const(0, 1).catch_npe("nowhere")
        with pytest.raises(AssemblyError, match="unresolved catch"):
            b.build()


class TestMethodAndProgram:
    def test_empty_method_rejected(self):
        with pytest.raises(ValueError, match="empty code"):
            Method(name="m", code=[])

    def test_len_is_code_length(self):
        m = MethodBuilder("m").nop().nop().return_void().build()
        assert len(m) == 3

    def test_duplicate_method_rejected(self):
        p = Program()
        p.add_method(MethodBuilder("m").return_void().build())
        with pytest.raises(ValueError, match="duplicate"):
            p.add_method(MethodBuilder("m").return_void().build())

    def test_intrinsic_and_method_namespaces_shared(self):
        p = Program()
        p.add_intrinsic("f", lambda args: None)
        with pytest.raises(ValueError, match="duplicate"):
            p.add_method(MethodBuilder("f").return_void().build())

    def test_has_and_lookup(self):
        p = Program()
        p.add_method(MethodBuilder("m").return_void().build())
        p.add_intrinsic("native", lambda args: 1)
        assert p.has("m") and p.has("native")
        assert not p.has("ghost")
        assert p.method("ghost") is None
        assert p.intrinsic("native")([]) == 1

    def test_method_names_sorted(self):
        p = Program()
        p.add_method(MethodBuilder("b").return_void().build())
        p.add_method(MethodBuilder("a").return_void().build())
        assert p.method_names() == ["a", "b"]

    def test_builder_is_chainable(self):
        m = (
            MethodBuilder("m", params=1)
            .const(1, 2)
            .add(2, 0, 1)
            .return_value(2)
            .build()
        )
        assert m.param_count == 1
        assert len(m.code) == 3
