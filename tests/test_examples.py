"""Smoke tests: every example script runs to completion and prints the
result it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "use-free races reported: 1" in out
        assert "concurrent under the event-driven causality model: True" in out

    def test_mytracks_bug(self):
        out = run_example("mytracks_bug.py")
        assert "CAFA reports 1 use-free race(s) anyway" in out
        assert "crashed with a NullPointerException" in out

    def test_queue_rules_tour(self):
        out = run_example("queue_rules_tour.py")
        assert "Figure 4a (atomicity rule): A happens-before B" in out
        assert "Figure 4d (queue rule 2): B happens-before A" in out
        assert "Figure 4e (no guarantee): A and B are concurrent" in out

    def test_commutative_events(self):
        out = run_example("commutative_events.py")
        assert "CAFA: 0 use-free races reported" in out
        assert "if-guard" in out
        assert "intra-event-allocation" in out

    def test_async_task_leak(self):
        out = run_example("async_task_leak.py")
        assert "CAFA reports: 1 use-free race(s)" in out
        assert "the FREE" in out

    @pytest.mark.slow
    def test_full_evaluation_small_scale(self):
        out = run_example("full_evaluation.py", "0.02")
        assert "Overall" in out
        assert "115" in out
        assert "precision: 60%" in out
