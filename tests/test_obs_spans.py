"""Tests for span tracing and its Chrome trace_event export
(repro.obs.spans)."""

import json

import pytest

from repro.obs import (
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)
from repro.obs.spans import _NULL_SPAN


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


class TestSpanLifecycle:
    def test_disabled_tracing_returns_the_shared_null_span(self):
        assert not tracing_enabled()
        assert span("hb.fixpoint") is _NULL_SPAN
        with span("hb.fixpoint", ops=5):
            pass  # must be a usable (no-op) context manager

    def test_enabled_tracing_records_spans(self):
        recorder = enable_tracing()
        assert tracing_enabled()
        with span("trace.decode", bytes=128):
            pass
        with span("hb.closure"):
            pass
        assert len(recorder) == 2
        names = [event[0] for event in recorder.events]
        assert names == ["trace.decode", "hb.closure"]
        assert recorder.events[0][4] == {"bytes": 128}
        assert recorder.events[1][4] is None

    def test_durations_are_nonnegative(self):
        recorder = enable_tracing()
        with span("x"):
            pass
        _name, _start, duration_ns, _tid, _args = recorder.events[0]
        assert duration_ns >= 0

    def test_disable_returns_the_recorder_for_export(self):
        recorder = enable_tracing()
        with span("x"):
            pass
        assert disable_tracing() is recorder
        assert disable_tracing() is None
        with span("x"):
            pass
        assert len(recorder) == 1  # nothing recorded after disable

    def test_nested_spans_both_record(self):
        recorder = enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        assert [event[0] for event in recorder.events] == ["inner", "outer"]


class TestRecorderBounds:
    def test_capacity_drops_and_counts(self):
        recorder = enable_tracing(capacity=2)
        for _ in range(5):
            with span("x"):
                pass
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert recorder.to_chrome_trace()["spans_dropped"] == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestChromeExport:
    def test_document_shape(self):
        recorder = enable_tracing()
        with span("hb.scan", ops=10):
            pass
        doc = recorder.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "hb.scan"
        assert event["args"] == {"ops": 10}
        assert event["dur"] >= 0
        assert {"ts", "pid", "tid"} <= set(event)

    def test_dump_writes_loadable_json(self, tmp_path):
        recorder = enable_tracing()
        with span("x"):
            pass
        path = tmp_path / "spans.json"
        recorder.dump(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 1


class TestEngineIntegration:
    def test_offline_pipeline_emits_the_cataloged_spans(self):
        from repro.apps import make_app
        from repro.detect import UseFreeDetector
        from repro.hb import build_happens_before

        recorder = enable_tracing()
        trace = make_app("connectbot", scale=0.02, seed=1).run().trace
        hb = build_happens_before(trace)
        UseFreeDetector(trace, hb=hb).detect()
        names = {event[0] for event in recorder.events}
        assert {"hb.scan", "hb.base_edges", "hb.closure",
                "hb.fixpoint"} <= names

    def test_stream_analyzer_emits_stream_spans(self):
        from repro.apps import make_app
        from repro.stream import StreamAnalyzer
        from repro.trace import dumps_trace

        payload = dumps_trace(
            make_app("connectbot", scale=0.02, seed=1).run().trace
        ).encode("utf-8")
        recorder = enable_tracing()
        analyzer = StreamAnalyzer()
        analyzer.feed(payload)
        analyzer.finish()
        names = {event[0] for event in recorder.events}
        assert "trace.decode" in names
        assert "stream.detect" in names
