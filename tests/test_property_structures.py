"""Property-based tests on core data structures: the event queue,
vector clocks, trace serialization, and the key-node graph."""

from hypothesis import given, settings, strategies as st

from repro.hb import KeyGraph, VectorClock
from repro.runtime import EventQueue, SimEvent
from repro.trace import (
    Begin,
    Branch,
    BranchKind,
    Deref,
    End,
    Fork,
    IpcCall,
    Notify,
    Operation,
    PtrRead,
    PtrWrite,
    Read,
    Send,
    SendAtFront,
    Wait,
    Write,
    operation_from_dict,
)


# ---------------------------------------------------------------------------
# EventQueue
# ---------------------------------------------------------------------------

queue_ops_st = st.lists(
    st.tuples(
        st.sampled_from(["enqueue", "enqueue_front", "pop"]),
        st.integers(min_value=0, max_value=20),  # delay / time advance
    ),
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(queue_ops_st)
def test_event_queue_pop_respects_readiness_and_fifo(script):
    queue = EventQueue("q")
    now = 0
    counter = 0
    normal_order = []  # ids of tail-enqueued events, in enqueue order
    popped = []
    when_of = {}
    for action, arg in script:
        if action == "enqueue":
            counter += 1
            when = now + arg
            when_of[counter] = when
            queue.enqueue(SimEvent(task_id=str(counter), label="", handler=None, when=when))
            normal_order.append(counter)
        elif action == "enqueue_front":
            counter += 1
            when_of[counter] = now
            queue.enqueue_front(
                SimEvent(task_id=str(counter), label="", handler=None, when=now)
            )
        else:
            now += arg
            event = queue.pop_ready(now)
            if event is not None:
                # readiness: the constraint must have elapsed
                assert event.when <= now
                popped.append(int(event.task_id))

    # FIFO among tail-enqueued events with non-decreasing deadlines:
    # if a was enqueued before b and a.when <= b.when, a pops first
    # (this is the foundation of queue rule 1).
    popped_positions = {e: i for i, e in enumerate(popped)}
    for i, a in enumerate(normal_order):
        for b in normal_order[i + 1 :]:
            if when_of[a] <= when_of[b] and a in popped_positions and b in popped_positions:
                assert popped_positions[a] < popped_positions[b], (a, b)


@settings(max_examples=100, deadline=None)
@given(queue_ops_st)
def test_event_queue_conserves_events(script):
    queue = EventQueue("q")
    now, counter, popped = 0, 0, 0
    for action, arg in script:
        if action == "enqueue":
            counter += 1
            queue.enqueue(SimEvent(task_id=str(counter), label="", handler=None, when=now + arg))
        elif action == "enqueue_front":
            counter += 1
            queue.enqueue_front(SimEvent(task_id=str(counter), label="", handler=None, when=now))
        else:
            now += arg
            if queue.pop_ready(now) is not None:
                popped += 1
    assert len(queue) == counter - popped
    assert queue.enqueued == counter


# ---------------------------------------------------------------------------
# VectorClock
# ---------------------------------------------------------------------------

clock_st = st.dictionaries(
    st.sampled_from(["t", "u", "v", "w"]),
    st.integers(min_value=0, max_value=5),
    max_size=4,
).map(VectorClock)


@settings(max_examples=200)
@given(clock_st, clock_st)
def test_vc_happens_before_is_antisymmetric(a, b):
    assert not (a.happens_before(b) and b.happens_before(a))


@settings(max_examples=200)
@given(clock_st)
def test_vc_happens_before_is_irreflexive(a):
    assert not a.happens_before(a)


@settings(max_examples=100)
@given(clock_st, clock_st, clock_st)
def test_vc_happens_before_is_transitive(a, b, c):
    if a.happens_before(b) and b.happens_before(c):
        assert a.happens_before(c)

@settings(max_examples=100)
@given(clock_st, clock_st)
def test_vc_join_is_upper_bound(a, b):
    joined = a.copy()
    joined.join(b)
    for vc in (a, b):
        assert vc == joined or vc.happens_before(joined)


@settings(max_examples=100)
@given(clock_st, clock_st)
def test_vc_join_commutes(a, b):
    ab = a.copy(); ab.join(b)
    ba = b.copy(); ba.join(a)
    assert ab == ba


# ---------------------------------------------------------------------------
# operation serialization
# ---------------------------------------------------------------------------

task_st = st.sampled_from(["t", "u", "ev1:handler"])
addr_st = st.tuples(
    st.sampled_from(["obj", "static"]),
    st.integers(min_value=1, max_value=9),
    st.sampled_from(["p", "db", "handler"]),
)

operation_st = st.one_of(
    st.builds(Begin, task=task_st, time=st.integers(0, 100)),
    st.builds(End, task=task_st, time=st.integers(0, 100)),
    st.builds(Read, task=task_st, time=st.integers(0, 100), var=st.text(max_size=5), site=st.text(max_size=5)),
    st.builds(Write, task=task_st, time=st.integers(0, 100), var=st.text(max_size=5), site=st.text(max_size=5)),
    st.builds(Fork, task=task_st, child=st.text(max_size=5)),
    st.builds(Wait, task=task_st, monitor=st.text(max_size=5), ticket=st.integers(-1, 50)),
    st.builds(Notify, task=task_st, monitor=st.text(max_size=5), ticket=st.integers(-1, 50)),
    st.builds(Send, task=task_st, event=st.text(max_size=5), delay=st.integers(0, 100), queue=st.text(max_size=5)),
    st.builds(SendAtFront, task=task_st, event=st.text(max_size=5), queue=st.text(max_size=5)),
    st.builds(
        PtrRead,
        task=task_st,
        address=addr_st,
        object_id=st.one_of(st.none(), st.integers(1, 99)),
        method=st.text(max_size=5),
        pc=st.integers(-1, 99),
    ),
    st.builds(
        PtrWrite,
        task=task_st,
        address=addr_st,
        value=st.one_of(st.none(), st.integers(1, 99)),
        container=st.one_of(st.none(), st.integers(1, 99)),
        method=st.text(max_size=5),
        pc=st.integers(-1, 99),
    ),
    st.builds(Deref, task=task_st, object_id=st.integers(1, 99), method=st.text(max_size=5), pc=st.integers(0, 99)),
    st.builds(
        Branch,
        task=task_st,
        branch_kind=st.sampled_from(list(BranchKind)),
        pc=st.integers(0, 99),
        target=st.integers(0, 99),
        object_id=st.one_of(st.none(), st.integers(1, 99)),
        method=st.text(max_size=5),
    ),
    st.builds(IpcCall, task=task_st, txn=st.integers(1, 999), service=st.text(max_size=5), oneway=st.booleans()),
)


@settings(max_examples=300)
@given(operation_st)
def test_any_operation_round_trips_through_dict(op):
    back = operation_from_dict(op.to_dict())
    assert back == op
    assert type(back) is type(op)


# ---------------------------------------------------------------------------
# KeyGraph on random DAGs
# ---------------------------------------------------------------------------

edges_st = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] < e[1]),
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(edges_st)
def test_keygraph_closure_matches_dfs_on_random_dags(edges):
    g = KeyGraph()
    for i in range(15):
        g.add_node(i)
    adjacency = {i: set() for i in range(15)}
    for u, v in edges:
        g.add_edge(u, v, "e")
        adjacency[u].add(v)

    def dfs_reaches(src, dst):
        seen, stack = set(), [src]
        while stack:
            x = stack.pop()
            if x == dst:
                return True
            for y in adjacency[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return False

    for u in range(15):
        for v in range(15):
            expected = u == v or dfs_reaches(u, v)
            assert g.reaches(u, v) == expected, (u, v)
