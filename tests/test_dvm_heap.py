"""Unit tests for the simulated heap."""

import pytest

from repro.dvm import Heap, HeapObject, is_reference, object_id_of


class TestHeap:
    def test_object_ids_are_unique_and_increasing(self):
        heap = Heap()
        ids = [heap.new("C").object_id for _ in range(10)]
        assert len(set(ids)) == 10
        assert ids == sorted(ids)

    def test_get_returns_the_allocated_object(self):
        heap = Heap()
        obj = heap.new("Track")
        assert heap.get(obj.object_id) is obj

    def test_object_count(self):
        heap = Heap()
        for _ in range(5):
            heap.new("X")
        assert heap.object_count == 5

    def test_fields_start_empty(self):
        assert Heap().new("C").fields == {}

    def test_statics_default_to_none(self):
        heap = Heap()
        assert heap.get_static("Cls", "field") is None

    def test_statics_round_trip(self):
        heap = Heap()
        obj = heap.new("C")
        heap.put_static("Cls", "instance", obj)
        assert heap.get_static("Cls", "instance") is obj

    def test_field_address_identifies_container_and_field(self):
        heap = Heap()
        obj = heap.new("C")
        assert Heap.field_address(obj, "p") == ("obj", obj.object_id, "p")

    def test_static_address(self):
        assert Heap.static_address("Cls", "p") == ("static", "Cls", "p")

    def test_heaps_are_independent(self):
        h1, h2 = Heap(), Heap()
        h1.new("A")
        assert h2.object_count == 0


class TestReferenceHelpers:
    def test_object_id_of_null_is_none(self):
        assert object_id_of(None) is None

    def test_object_id_of_object(self):
        obj = Heap().new("C")
        assert object_id_of(obj) == obj.object_id

    def test_object_id_of_scalar_raises(self):
        with pytest.raises(TypeError):
            object_id_of(42)

    @pytest.mark.parametrize(
        "value,expected",
        [(None, True), (3, False), ("s", False)],
    )
    def test_is_reference_scalars(self, value, expected):
        assert is_reference(value) is expected

    def test_is_reference_object(self):
        assert is_reference(Heap().new("C"))

    def test_repr_mentions_class_and_id(self):
        obj = Heap().new("Track")
        assert "Track" in repr(obj)
        assert str(obj.object_id) in repr(obj)
