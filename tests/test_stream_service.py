"""The streaming service proper: in-process feed, epoch retirement on
multi-session streams, bounded closure memory, and the ``repro stream``
/ ``repro stats --stream`` CLI surface."""

import gzip

import pytest

from repro.apps import make_app
from repro.cli import main
from repro.detect import UseFreeDetector
from repro.stream import (
    SESSION_ID_STRIDE,
    StreamAnalyzer,
    concat_sessions,
)
from repro.trace import dumps_trace, save_trace_file

SCALE = 0.02
SEED = 1

_TRACES = {}


def app_trace(name="connectbot"):
    if name not in _TRACES:
        _TRACES[name] = make_app(name, scale=SCALE, seed=SEED).run().trace
    return _TRACES[name]


def offline_reports(trace):
    return [str(r) for r in UseFreeDetector(trace).detect().reports]


def stream_reports(trace, **kwargs):
    analyzer = StreamAnalyzer(**kwargs)
    for line in dumps_trace(trace, version=2).splitlines():
        analyzer.feed_line(line)
    return analyzer, [str(r) for r in analyzer.finish()]


class TestInProcessFeed:
    """append()/add_task() — no serialization round-trip at all."""

    def test_append_api_matches_offline(self):
        trace = app_trace()
        analyzer = StreamAnalyzer()
        for info in trace.tasks.values():
            analyzer.add_task(info)
        for op in trace:
            analyzer.append(op)
        online = [str(r) for r in analyzer.finish()]
        assert online == offline_reports(trace)
        assert analyzer.profile.ops_ingested == len(trace)

    def test_detect_now_is_provisional_and_harmless(self):
        trace = app_trace()
        lines = dumps_trace(trace, version=2).splitlines()
        analyzer = StreamAnalyzer(gc=False)
        half = len(lines) // 2
        for line in lines[:half]:
            analyzer.feed_line(line)
        provisional = {str(r.key) for r in analyzer.detect_now()}
        full_keys = {
            str(r.key) for r in UseFreeDetector(trace).detect().reports
        }
        # A mid-stream snapshot can only see races among ops so far.
        assert provisional <= full_keys
        for line in lines[half:]:
            analyzer.feed_line(line)
        assert [str(r) for r in analyzer.finish()] == offline_reports(trace)

    def test_poll_every_validated(self):
        with pytest.raises(ValueError, match="poll_every"):
            StreamAnalyzer(poll_every=0)

    def test_finish_is_idempotent_reports_accessor(self):
        trace = app_trace()
        analyzer, online = stream_reports(trace)
        assert [str(r) for r in analyzer.reports()] == online


class TestEpochGC:
    """Multi-session streams retire epochs and bound closure memory."""

    def _concat(self, k):
        return concat_sessions(app_trace(), sessions=k)

    def test_three_sessions_retire_three_epochs(self):
        combined = self._concat(3)
        analyzer, online = stream_reports(combined, gc=True)
        assert analyzer.profile.epochs_retired == 3
        assert online == offline_reports(combined)
        assert analyzer.profile.cross_epoch_accesses == 0
        assert analyzer.profile.retired_addresses > 0
        assert len(analyzer.epochs) == 3
        assert [e.index for e in analyzer.epochs] == [0, 1, 2]
        assert sum(e.ops for e in analyzer.epochs) == len(combined)

    def test_gc_bounds_peak_closure(self):
        combined = self._concat(3)
        single, _ = stream_reports(app_trace(), gc=True)
        bounded, _ = stream_reports(combined, gc=True)
        unbounded, _ = stream_reports(combined, gc=False)
        # With GC the peak stays within 2x one session's footprint;
        # without it the closure grows with every session.
        assert (
            bounded.profile.peak_closure_bytes
            <= 2 * single.profile.peak_closure_bytes
        )
        assert (
            unbounded.profile.peak_closure_bytes
            > bounded.profile.peak_closure_bytes
        )
        assert unbounded.profile.epochs_retired == 0

    def test_no_gc_matches_offline_on_concat(self):
        combined = self._concat(3)
        _, online = stream_reports(combined, gc=False)
        assert online == offline_reports(combined)

    def test_session_renaming_keeps_sessions_disjoint(self):
        combined = self._concat(2)
        base = app_trace()
        assert len(combined) == 2 * len(base)
        assert len(combined.tasks) == 2 * len(base.tasks)
        names = set(combined.tasks)
        assert all(n.startswith(("s0:", "s1:")) for n in names)
        assert SESSION_ID_STRIDE >= 1_000_000
        with pytest.raises(ValueError):
            concat_sessions(base, sessions=0)


class TestStreamCLI:
    """`repro stream` and `repro stats --stream` end to end."""

    def _trace_file(self, tmp_path, name="session.trace.gz"):
        path = tmp_path / name
        save_trace_file(app_trace(), path, version=2)
        return path

    def test_stream_file(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert main(["stream", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out
        assert "records ingested" in out

    def test_stats_stream(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert main(["stats", str(path), "--stream"]) == 0
        out = capsys.readouterr().out
        assert "records ingested" in out

    def test_stream_strict_rejects_truncation(self, tmp_path, capsys):
        text = dumps_trace(app_trace(), version=2)
        path = tmp_path / "crash.trace"
        path.write_text(text[: int(len(text) * 0.6)], encoding="utf-8")
        assert main(["stream", str(path)]) == 1
        err = capsys.readouterr().err
        assert "--salvage" in err

    def test_stream_salvage_analyzes_prefix(self, tmp_path, capsys):
        text = dumps_trace(app_trace(), version=2)
        path = tmp_path / "crash.trace.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fp:
            fp.write(text[: int(len(text) * 0.6)])
        assert main(["stream", str(path), "--salvage"]) == 0
        out = capsys.readouterr().out
        assert "records ingested" in out

    def test_stream_selftest(self, capsys):
        assert main(["stream", "--selftest", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "identical" in out
