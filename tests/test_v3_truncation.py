"""Crash-truncated v3 binary traces: cutting the byte stream anywhere
yields either a clean :class:`TraceFormatError` (strict mode) or a
salvaged prefix whose detected races are a subset of the full trace's
(``strict=False``) — the binary mirror of
:mod:`tests.test_stream_truncation`.

The frame layout makes every cut detectable: records are
length-prefixed, the file ends in a fixed trailer, and the footer
offset must round-trip — so a byte cut mid-frame, mid-batch, or
through the trailer is truncation *evidence*, never silently-shorter
data.
"""

import gzip

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import ALL_APPS, make_app
from repro.detect import UseFreeDetector
from repro.trace import (
    BinaryTraceDecoder,
    TraceError,
    TraceFormatError,
    dumps_trace_bytes,
    load_trace_file,
    loads_trace,
)
from repro.trace.binary import MAGIC_V3, TRAILER_LEN, _read_uvarint

SCALE = 0.02
SEED = 1
APP_NAMES = [app.name for app in ALL_APPS]

#: app name -> (v3 blob, frozenset of full-trace race keys)
_CACHE = {}


def app_blob(name):
    """The app's serialized v3 blob and its full-trace race keys."""
    if name not in _CACHE:
        trace = make_app(name, scale=SCALE, seed=SEED).run().trace
        blob = dumps_trace_bytes(trace, version=3)
        keys = frozenset(
            str(r.key) for r in UseFreeDetector(trace).detect().reports
        )
        _CACHE[name] = (blob, keys)
    return _CACHE[name]


def race_keys(trace):
    return frozenset(
        str(r.key) for r in UseFreeDetector(trace).detect().reports
    )


def header_end(blob):
    """Byte offset just past the header frame (cuts before it cannot
    salvage: without a header nothing is trustworthy)."""
    pos = len(MAGIC_V3) + 1  # magic + header tag byte
    length, pos = _read_uvarint(blob, pos, len(blob))
    return pos + length


class TestArbitraryByteCuts:
    """Cut the blob at any byte: strict raises, salvage degrades."""

    @pytest.mark.parametrize("name", APP_NAMES)
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_any_cut_rejected_or_salvaged(self, name, data):
        blob, full_keys = app_blob(name)
        cut = data.draw(st.integers(1, len(blob) - 1), label="cut")
        prefix = blob[:cut]
        with pytest.raises(TraceFormatError):
            loads_trace(prefix)
        if cut < header_end(blob):
            # Header damage always raises, even in salvage mode: with
            # no negotiated header nothing in the stream can be trusted.
            with pytest.raises(TraceError):
                loads_trace(prefix, strict=False)
        else:
            salvaged = loads_trace(prefix, strict=False)
            assert race_keys(salvaged) <= full_keys

    @pytest.mark.parametrize("name", APP_NAMES[:3])
    def test_trailer_cuts_are_truncation_evidence(self, name):
        blob, _ = app_blob(name)
        for cut in (len(blob) - 1, len(blob) - TRAILER_LEN):
            with pytest.raises(TraceFormatError):
                loads_trace(blob[:cut])

    def test_bytes_after_trailer_rejected(self):
        blob, _ = app_blob("connectbot")
        with pytest.raises(TraceFormatError, match="after the v3 trailer"):
            loads_trace(blob + b"junk")


class TestIncrementalDecoder:
    def test_chunked_feed_equals_one_shot(self):
        blob, _ = app_blob("connectbot")
        one_shot = loads_trace(blob)
        decoder = BinaryTraceDecoder()
        for start in range(0, len(blob), 997):
            decoder.feed(blob[start : start + 997])
        chunked = decoder.finish()
        assert chunked.ops == one_shot.ops
        assert set(chunked.tasks) == set(one_shot.tasks)

    def test_flush_mid_frame_is_damage(self):
        blob, _ = app_blob("connectbot")
        decoder = BinaryTraceDecoder(strict=False)
        decoder.feed(blob[: len(blob) // 2])
        decoder.flush()
        assert decoder.degraded

    def test_degraded_decoder_ignores_later_feeds(self):
        blob, full_keys = app_blob("connectbot")
        decoder = BinaryTraceDecoder(strict=False)
        # corrupt one frame tag in the middle of the stream
        middle = header_end(blob) + (len(blob) - header_end(blob)) // 2
        damaged = blob[:middle] + b"\xff" + blob[middle + 1 :]
        decoder.feed(damaged)
        assert decoder.degraded
        before = len(decoder.trace)
        decoder.feed(blob)
        assert len(decoder.trace) == before
        assert race_keys(decoder.finish()) <= full_keys


class TestDamagedFiles:
    def test_truncated_gzip_member(self, tmp_path):
        blob, full_keys = app_blob("connectbot")
        path = tmp_path / "crash.v3.gz"
        packed = gzip.compress(blob)
        path.write_bytes(packed[: len(packed) // 2])  # cut the member short
        with pytest.raises(TraceFormatError, match="damaged"):
            load_trace_file(path)
        salvaged = load_trace_file(path, strict=False)
        assert len(salvaged) < len(loads_trace(blob))
        assert race_keys(salvaged) <= full_keys

    def test_truncated_plain_file(self, tmp_path):
        blob, full_keys = app_blob("connectbot")
        path = tmp_path / "crash.v3"
        path.write_bytes(blob[: len(blob) * 3 // 4])
        with pytest.raises(TraceFormatError):
            load_trace_file(path)
        salvaged = load_trace_file(path, strict=False)
        assert race_keys(salvaged) <= full_keys


class TestSalvageCli:
    def test_stream_salvage_accepts_truncated_v3(self, tmp_path, capsys):
        from repro.cli import main

        blob, _ = app_blob("connectbot")
        path = tmp_path / "crash.v3"
        path.write_bytes(blob[: len(blob) * 3 // 4])
        assert main(["stream", str(path)]) == 1
        err = capsys.readouterr().err
        assert "--salvage" in err
        assert main(["stream", str(path), "--salvage"]) == 0
        captured = capsys.readouterr()
        assert "stream damaged" in captured.err
        assert "stream profile" in captured.out
