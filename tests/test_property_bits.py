"""Property tests for the chunked sparse bitset.

Every :class:`~repro.hb.bits.SparseBits` operation is checked against
the Python big-int bitset it replaces: whatever a plain ``int`` says
about a union, subset test, popcount, membership probe, range probe,
or iteration order, the chunked representation must say too.  The
copy-on-write discipline gets its own properties: ``copy()`` shares
chunk objects by reference, and mutating either side afterwards never
leaks into the other.

Index strategies deliberately straddle chunk boundaries (multiples of
``CHUNK_BITS`` plus or minus a little) so the first/interior/last
block handling of ``any_in_range`` and the dense-chunk fast paths see
real traffic, not just small indices inside block zero.
"""

from hypothesis import given, settings, strategies as st

from repro.hb.bits import CHUNK_BITS, FULL_CHUNK, SparseBits, vector_stats

#: indices clustered around chunk boundaries as well as spread wide
index_st = st.one_of(
    st.integers(min_value=0, max_value=4 * CHUNK_BITS + 5),
    st.builds(
        lambda block, off: block * CHUNK_BITS + off,
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=-2, max_value=2).map(lambda d: d % CHUNK_BITS),
    ),
)

indices_st = st.lists(index_st, max_size=80)


def as_int(indices):
    value = 0
    for i in indices:
        value |= 1 << i
    return value


@settings(max_examples=300, deadline=None)
@given(indices_st)
def test_construction_roundtrip(indices):
    model = as_int(indices)
    bits = SparseBits.from_indices(indices)
    assert bits.to_int() == model
    assert SparseBits.from_int(model) == bits
    assert bits == model  # __eq__ vs int compares the bit pattern
    assert bits.bit_count() == bin(model).count("1")
    assert bool(bits) == bool(model)
    # No zero chunks are ever stored — the core invariant.
    assert all(chunk for chunk in bits.chunks.values())


@settings(max_examples=300, deadline=None)
@given(indices_st, index_st)
def test_membership_matches_int(indices, probe):
    model = as_int(indices)
    bits = SparseBits.from_indices(indices)
    assert bits.test(probe) == bool(model >> probe & 1)
    assert (probe in bits) == bool(model >> probe & 1)


@settings(max_examples=300, deadline=None)
@given(indices_st, index_st)
def test_set_matches_int(indices, extra):
    model = as_int(indices) | (1 << extra)
    bits = SparseBits.from_indices(indices)
    bits.set(extra)
    assert bits == model


@settings(max_examples=300, deadline=None)
@given(indices_st, indices_st)
def test_union_matches_int(a, b):
    model_a, model_b = as_int(a), as_int(b)
    bits_a = SparseBits.from_indices(a)
    bits_b = SparseBits.from_indices(b)
    gained = bits_a.ior(bits_b)
    union = model_a | model_b
    assert bits_a == union
    assert bits_b == model_b  # the right-hand side is never touched
    # ior reports exactly the newly-set bit count (the incremental
    # closure's bits_propagated counter rides on this).
    assert gained == bin(union).count("1") - bin(model_a).count("1")


@settings(max_examples=300, deadline=None)
@given(indices_st, indices_st)
def test_subset_and_intersects_match_int(a, b):
    model_a, model_b = as_int(a), as_int(b)
    bits_a = SparseBits.from_indices(a)
    bits_b = SparseBits.from_indices(b)
    assert bits_a.issubset(bits_b) == (model_a & ~model_b == 0)
    assert bits_a.intersects(bits_b) == (model_a & model_b != 0)


@settings(max_examples=300, deadline=None)
@given(indices_st, indices_st)
def test_iteration_matches_int(a, b):
    bits_a = SparseBits.from_indices(a)
    bits_b = SparseBits.from_indices(b)
    model_and = as_int(a) & as_int(b)
    assert list(bits_a) == sorted(set(a))
    # and_iter yields the intersection in ascending index order.
    assert list(bits_a.and_iter(bits_b)) == [
        i for i in sorted(set(a)) if model_and >> i & 1
    ]


@settings(max_examples=300, deadline=None)
@given(indices_st, index_st, index_st)
def test_any_in_range_matches_int(indices, x, y):
    lo, hi = min(x, y), max(x, y) + 1
    model = as_int(indices)
    bits = SparseBits.from_indices(indices)
    window = model >> lo & ((1 << (hi - lo)) - 1)
    assert bits.any_in_range(lo, hi) == bool(window)


@settings(max_examples=200, deadline=None)
@given(indices_st)
def test_dense_chunks_survive_roundtrip(indices):
    # Force a fully-dense block alongside the random contents.
    bits = SparseBits.from_indices(indices)
    bits.ior(SparseBits.from_int(FULL_CHUNK << CHUNK_BITS))
    model = as_int(indices) | (FULL_CHUNK << CHUNK_BITS)
    assert bits == model
    assert bits.chunks[1] == FULL_CHUNK


class TestCopyOnWrite:
    @settings(max_examples=200, deadline=None)
    @given(indices_st, index_st)
    def test_mutating_a_copy_leaves_the_source_intact(self, indices, extra):
        source = SparseBits.from_indices(indices)
        model = source.to_int()
        clone = source.copy()
        clone.set(extra)
        clone.ior(SparseBits.single(extra + CHUNK_BITS))
        assert source == model  # untouched despite shared chunks
        assert clone == model | (1 << extra) | (1 << (extra + CHUNK_BITS))

    @settings(max_examples=200, deadline=None)
    @given(indices_st, indices_st)
    def test_ior_adopts_chunks_by_reference(self, a, b):
        bits_a = SparseBits.from_indices(a)
        bits_b = SparseBits.from_indices(b)
        bits_a.ior(bits_b)
        # Blocks the receiver lacked are adopted, not copied: the two
        # tables now hold the identical chunk objects there.
        a_blocks = {i // CHUNK_BITS for i in a}
        for block, chunk in bits_b.chunks.items():
            if block not in a_blocks:
                assert bits_a.chunks[block] is chunk

    def test_vector_stats_counts_shared_chunks_once(self):
        base = SparseBits.from_indices([1, CHUNK_BITS + 2])
        clone = base.copy()
        clone.set(2 * CHUNK_BITS + 3)
        stats = vector_stats([base, clone])
        assert stats.sets == 2
        assert stats.chunk_refs == 5
        assert stats.chunks_allocated == 3  # two shared + one private
        assert stats.chunks_shared == 2
