"""The six scenarios of Figure 4, written down literally.

Each test constructs the trace drawn in the figure and checks that the
happens-before builder derives exactly the relations the paper states
(the caption's "A -> B" / crossed-out arrows).
"""

import pytest

from repro import CAFA_MODEL, ModelConfig, build_happens_before
from repro.testing import TraceBuilder


def fig4a_trace():
    """Atomicity rule: fork(A,T) < perform(B,L) implies A < B."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("S1")
    b.thread("S2")
    b.thread("T")
    b.event("A", looper="L")
    b.event("B", looper="L")
    # A and B are sent by two unordered root threads so no queue rule
    # can order them; the ordering must come from atomicity alone.
    b.begin("S1"); b.send("S1", "A"); b.end("S1")
    b.begin("S2"); b.send("S2", "B"); b.end("S2")
    b.begin("A"); b.fork("A", "T"); b.end("A")
    b.begin("T"); b.register("T", "Lst"); b.end("T")
    b.begin("B"); b.perform("B", "Lst"); b.end("B")
    return b.build()


class TestFigure4a:
    def test_atomicity_derives_a_before_b(self):
        hb = build_happens_before(fig4a_trace())
        assert hb.event_ordered("A", "B")
        assert not hb.event_ordered("B", "A")

    def test_without_atomicity_rule_no_order(self):
        hb = build_happens_before(fig4a_trace(), ModelConfig(atomicity=False))
        assert not hb.event_ordered("A", "B")

    def test_fixpoint_ran_at_least_two_rounds(self):
        # The atomicity conclusion depends on the listener edge, which
        # is a base edge, so one productive round plus one empty round.
        hb = build_happens_before(fig4a_trace())
        assert hb.iterations >= 2
        assert hb.derived_edges >= 1


class TestFigure4b:
    """Queue rule 1: ordered sends with equal delays order the events."""

    def _trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A", delay=1); b.send("T", "B", delay=1); b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        return b.build()

    def test_a_before_b(self):
        hb = build_happens_before(self._trace())
        assert hb.event_ordered("A", "B")
        assert not hb.event_ordered("B", "A")

    def test_without_queue_rule_1_no_order(self):
        hb = build_happens_before(self._trace(), ModelConfig(queue_rule_1=False))
        assert not hb.event_ordered("A", "B")


class TestFigure4c:
    """A larger delay on the earlier send breaks the guarantee."""

    def test_no_order_between_a_and_b(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A", delay=5); b.send("T", "B", delay=0); b.end("T")
        b.begin("B"); b.end("B")  # B executes first owing to A's delay
        b.begin("A"); b.end("A")
        hb = build_happens_before(b.build())
        assert not hb.event_ordered("A", "B")
        assert not hb.event_ordered("B", "A")

    def test_smaller_delay_first_still_orders(self):
        """delay1 <= delay2 is the exact side condition."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A", delay=2); b.send("T", "B", delay=5); b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        hb = build_happens_before(b.build())
        assert hb.event_ordered("A", "B")


def fig4d_trace():
    """Queue rule 2 through the fixpoint: C sends A then sendAtFronts B."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("S")
    b.event("C", looper="L")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.begin("S"); b.send("S", "C"); b.end("S")
    b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


class TestFigure4d:
    def test_b_before_a(self):
        hb = build_happens_before(fig4d_trace())
        assert hb.event_ordered("B", "A")
        assert not hb.event_ordered("A", "B")

    def test_needs_multiple_fixpoint_rounds(self):
        # sendAtFront(B) < begin(A) itself requires the atomicity rule
        # (end(C) < begin(A) via send(C,A) < begin(A)), so rule 2 can
        # only fire on a later round.
        hb = build_happens_before(fig4d_trace())
        assert hb.iterations >= 3

    def test_without_rule_2_no_order(self):
        hb = build_happens_before(fig4d_trace(), ModelConfig(queue_rule_2=False))
        assert not hb.event_ordered("B", "A")

    def test_c_before_both(self):
        hb = build_happens_before(fig4d_trace())
        assert hb.event_ordered("C", "A")
        assert hb.event_ordered("C", "B")


class TestFigure4e:
    """send then sendAtFront from a regular thread: both orders possible."""

    def test_no_order(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A"); b.send_at_front("T", "B"); b.end("T")
        b.begin("B"); b.end("B")
        b.begin("A"); b.end("A")
        hb = build_happens_before(b.build())
        assert not hb.event_ordered("A", "B")
        assert not hb.event_ordered("B", "A")


class TestFigure4f:
    """A sendAtFront from an unrelated event cannot be ordered with A."""

    def test_no_order(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.thread("U")
        b.event("E", looper="L")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("U"); b.send("U", "E"); b.end("U")
        b.begin("T"); b.send("T", "A"); b.end("T")
        b.begin("E"); b.send_at_front("E", "B"); b.end("E")
        b.begin("B"); b.end("B")
        b.begin("A"); b.end("A")
        hb = build_happens_before(b.build())
        assert not hb.event_ordered("A", "B")
        assert not hb.event_ordered("B", "A")


class TestQueueRule3:
    """sendAtFront(e1) < send(e2) always orders e1 before e2."""

    def _trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send_at_front("T", "A"); b.send("T", "B", delay=3); b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        return b.build()

    def test_order_derived(self):
        hb = build_happens_before(self._trace())
        assert hb.event_ordered("A", "B")

    def test_disabled_rule_drops_order(self):
        hb = build_happens_before(self._trace(), ModelConfig(queue_rule_3=False))
        assert not hb.event_ordered("A", "B")


class TestQueueRule4:
    """Two sendAtFronts from one event: the later one runs first."""

    def _trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S")
        b.event("C", looper="L")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("S"); b.send("S", "C"); b.end("S")
        b.begin("C"); b.send_at_front("C", "A"); b.send_at_front("C", "B"); b.end("C")
        b.begin("B"); b.end("B")  # B was pushed in front of A
        b.begin("A"); b.end("A")
        return b.build()

    def test_b_before_a(self):
        hb = build_happens_before(self._trace())
        assert hb.event_ordered("B", "A")
        assert not hb.event_ordered("A", "B")

    def test_disabled_rule_drops_order(self):
        hb = build_happens_before(self._trace(), ModelConfig(queue_rule_4=False))
        assert not hb.event_ordered("B", "A")
