"""The parallel evaluation pipeline: jobs validation, determinism,
and worker-failure diagnostics."""

import pytest

from repro.analysis import (
    explore_seeds,
    format_table1,
    paper_table1_rows,
    reproduce_figure8,
    reproduce_table1,
)
from repro.analysis.report_doc import generate_report
from repro.apps import ALL_APPS


def table_fingerprint(table):
    """Everything observable about a Table1, comparably."""
    return [
        (
            e.name,
            e.events,
            e.row(),
            [(r.key, r.verdict) for r in e.result.reports],
            [(r.key, r.verdict) for r in e.matched],
            [r.key for r in e.unmatched],
            list(e.missed),
        )
        for e in table.evaluations
    ]


class FailingApp:
    """A stand-in app whose pipeline always crashes (module level so
    the process pool can pickle it by reference)."""

    name = "kaput"

    def __init__(self, scale=0.1, seed=0):
        pass

    def run(self, tracing=True, **kwargs):
        raise RuntimeError("simulated workload crash")


class TestJobsValidation:
    @pytest.mark.parametrize("jobs", [0, -1, -7])
    def test_table1_rejects_nonpositive_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            reproduce_table1(jobs=jobs)

    @pytest.mark.parametrize("jobs", [0, -3])
    def test_figure8_rejects_nonpositive_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            reproduce_figure8(jobs=jobs)

    @pytest.mark.parametrize("jobs", [1.5, "2", None, True])
    def test_non_integer_jobs_rejected(self, jobs):
        with pytest.raises(ValueError, match="positive integer"):
            reproduce_table1(jobs=jobs)

    @pytest.mark.parametrize("jobs", [0, -2])
    def test_explore_rejects_nonpositive_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            explore_seeds(ALL_APPS[0], seeds=[0, 1], jobs=jobs)

    @pytest.mark.parametrize("jobs", [0, -5])
    def test_report_rejects_nonpositive_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            generate_report(jobs=jobs)


class TestParallelMatchesSerial:
    APPS = ALL_APPS[:3]

    def test_table1_parallel_equals_serial(self):
        serial = reproduce_table1(apps=self.APPS, scale=0.02, seed=0)
        parallel = reproduce_table1(apps=self.APPS, scale=0.02, seed=0, jobs=2)
        assert table_fingerprint(parallel) == table_fingerprint(serial)
        rows = paper_table1_rows(self.APPS)
        assert format_table1(parallel, rows) == format_table1(serial, rows)

    def test_figure8_parallel_equals_serial(self):
        serial = reproduce_figure8(apps=self.APPS, scale=0.02, seed=0)
        parallel = reproduce_figure8(apps=self.APPS, scale=0.02, seed=0, jobs=2)
        assert parallel == serial

    def test_results_stay_in_app_order(self):
        table = reproduce_table1(apps=self.APPS, scale=0.02, seed=0, jobs=3)
        assert [e.name for e in table.evaluations] == [a.name for a in self.APPS]

    def test_explore_parallel_equals_serial(self):
        app_cls = ALL_APPS[0]
        serial = explore_seeds(app_cls, seeds=range(4), scale=0.02)
        parallel = explore_seeds(app_cls, seeds=range(4), scale=0.02, jobs=3)
        assert parallel == serial
        assert parallel.seeds == [0, 1, 2, 3]  # seed order, not finish order

    def test_report_parallel_is_byte_identical(self):
        kwargs = dict(
            scale=0.02, seed=0, apps=self.APPS, include_slowdowns=False
        )
        serial = generate_report(**kwargs)
        parallel = generate_report(jobs=3, **kwargs)
        assert parallel == serial


class TestWorkerFailures:
    def test_table1_failure_names_the_app(self):
        apps = [ALL_APPS[0], FailingApp]
        with pytest.raises(RuntimeError, match="table1 worker for app 'kaput'") as ei:
            reproduce_table1(apps=apps, scale=0.02, seed=0, jobs=2)
        assert "simulated workload crash" in str(ei.value)
        assert isinstance(ei.value.__cause__, RuntimeError)

    def test_figure8_failure_names_the_app(self):
        apps = [FailingApp, ALL_APPS[0]]
        with pytest.raises(RuntimeError, match="figure8 worker for app 'kaput'"):
            reproduce_figure8(apps=apps, scale=0.02, seed=0, jobs=2)

    def test_serial_failure_is_not_wrapped(self):
        # jobs=1 takes the plain serial path: the original exception
        # propagates unchanged.
        with pytest.raises(RuntimeError, match="simulated workload crash"):
            reproduce_table1(apps=[FailingApp], scale=0.02, seed=0)

    def test_explore_failure_names_the_seed(self):
        with pytest.raises(
            RuntimeError, match="explore worker for seed 0 of app 'kaput'"
        ) as ei:
            explore_seeds(FailingApp, seeds=[0, 1], scale=0.02, jobs=2)
        assert "simulated workload crash" in str(ei.value)

    def test_report_failure_names_the_app(self):
        apps = [ALL_APPS[0], FailingApp]
        with pytest.raises(
            RuntimeError, match="report worker for app 'kaput'"
        ):
            generate_report(
                scale=0.02, seed=0, apps=apps, include_slowdowns=False, jobs=2
            )


class DyingApp:
    """A stand-in app whose worker *process* dies without raising —
    the OOM-kill / native-crash shape (module level so the process
    pool can pickle it by reference)."""

    name = "oomed"

    def __init__(self, scale=0.1, seed=0):
        pass

    def run(self, tracing=True, **kwargs):
        import os

        os._exit(137)  # SIGKILL-style death: no exception, no result


class TestWorkerProcessDeath:
    def test_dead_worker_names_an_item_not_bare_pool_error(self):
        apps = [ALL_APPS[0], DyingApp]
        with pytest.raises(RuntimeError, match="worker process for app") as ei:
            reproduce_table1(apps=apps, scale=0.02, seed=0, jobs=2)
        message = str(ei.value)
        assert "died" in message
        assert "jobs=1" in message  # tells the user how to isolate it
        from concurrent.futures.process import BrokenProcessPool

        assert isinstance(ei.value.__cause__, BrokenProcessPool)

    def test_dead_worker_in_figure8(self):
        apps = [DyingApp, ALL_APPS[0]]
        with pytest.raises(RuntimeError, match="figure8 worker process for"):
            reproduce_figure8(apps=apps, scale=0.02, seed=0, jobs=2)
