"""Property tests pinning the profile-merge algebra.

The daemon aggregates per-session :class:`StreamProfile`\\ s twice (per
shard, then fleet-wide) and :class:`WorkerProfile`\\ s once; the live
metrics path merges :class:`MetricsSnapshot`\\ s shipped at arbitrary
times from arbitrary shard subsets.  All three merges must therefore
be associative and order-independent with the empty merge as identity
— otherwise the reported totals would depend on shard count, shipment
timing, or drain order.  Numeric inputs are dyadic rationals (n/16) so
float addition is exact and the algebraic properties hold exactly.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.obs import Histogram, MetricsSnapshot, merge_snapshots
from repro.parallel import WorkerProfile, merge_worker_profiles
from repro.stream import StreamProfile, merge_profiles

counts = st.integers(min_value=0, max_value=1 << 20)
#: exactly-representable non-negative dyadic rationals
dyadic = counts.map(lambda n: n / 16.0)

stream_profiles = st.builds(
    StreamProfile,
    **{
        field.name: counts
        for field in dataclasses.fields(StreamProfile)
    },
)

worker_profiles = st.builds(
    WorkerProfile,
    name=st.sampled_from(["shard-0", "shard-1", "shard-2"]),
    pid=st.integers(min_value=1, max_value=1 << 16),
    messages=counts,
    busy_seconds=dyadic,
)


def _as_tuple(profile) -> tuple:
    return tuple(
        getattr(profile, field.name)
        for field in dataclasses.fields(profile)
    )


class TestStreamProfileMerge:
    @given(st.lists(stream_profiles, max_size=8), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_order_independent(self, profiles, rng):
        shuffled = list(profiles)
        rng.shuffle(shuffled)
        assert _as_tuple(merge_profiles(profiles)) == _as_tuple(
            merge_profiles(shuffled)
        )

    @given(
        st.lists(stream_profiles, max_size=8),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_invariant(self, profiles, cut):
        """Merging shard-level merges equals merging everything flat —
        the sharded daemon's totals cannot depend on the partition."""
        cut = min(cut, len(profiles))
        regrouped = merge_profiles(
            [merge_profiles(profiles[:cut]), merge_profiles(profiles[cut:])]
        )
        assert _as_tuple(regrouped) == _as_tuple(merge_profiles(profiles))

    @given(stream_profiles)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, profile):
        assert _as_tuple(merge_profiles([])) == _as_tuple(StreamProfile())
        assert _as_tuple(merge_profiles([profile])) == _as_tuple(profile)


class TestWorkerProfileMerge:
    @given(st.lists(worker_profiles, max_size=8), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_order_independent(self, profiles, rng):
        shuffled = list(profiles)
        rng.shuffle(shuffled)
        merged = merge_worker_profiles(profiles)
        again = merge_worker_profiles(shuffled)
        assert (merged.messages, merged.busy_seconds) == (
            again.messages,
            again.busy_seconds,
        )

    @given(
        st.lists(worker_profiles, max_size=8),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_invariant(self, profiles, cut):
        cut = min(cut, len(profiles))
        flat = merge_worker_profiles(profiles)
        regrouped = merge_worker_profiles(
            [
                merge_worker_profiles(profiles[:cut]),
                merge_worker_profiles(profiles[cut:]),
            ]
        )
        assert (flat.messages, flat.busy_seconds) == (
            regrouped.messages,
            regrouped.busy_seconds,
        )

    def test_identity_element(self):
        empty = merge_worker_profiles([])
        assert (empty.name, empty.pid) == ("merged", 0)
        assert (empty.messages, empty.busy_seconds) == (0, 0.0)


# -- metrics snapshots -------------------------------------------------------

sample_names = st.sampled_from(["a_total", "b_total", "c_depth"])


@st.composite
def snapshots(draw):
    snap = MetricsSnapshot()
    for name in draw(st.lists(sample_names, max_size=3, unique=True)):
        snap.counter(name, draw(dyadic))
    for name in draw(st.lists(sample_names, max_size=2, unique=True)):
        snap.gauge(f"g_{name}", draw(dyadic))
    if draw(st.booleans()):
        hist = Histogram(buckets=(0.5, 2.0))
        for value in draw(st.lists(dyadic, max_size=4)):
            hist.observe(value)
        snap.histogram("lat", hist.data())
    return snap


def _canon(snap: MetricsSnapshot) -> tuple:
    return (
        tuple(sorted(snap.counters.items())),
        tuple(sorted(snap.gauges.items())),
        tuple(
            (key, tuple(data.counts), data.sum, data.count)
            for key, data in sorted(snap.histograms.items())
        ),
    )


class TestSnapshotMerge:
    @given(st.lists(snapshots(), max_size=6), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_order_independent(self, snaps, rng):
        shuffled = list(snaps)
        rng.shuffle(shuffled)
        assert _canon(merge_snapshots(snaps)) == _canon(
            merge_snapshots(shuffled)
        )

    @given(
        st.lists(snapshots(), max_size=6),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_invariant(self, snaps, cut):
        cut = min(cut, len(snaps))
        regrouped = merge_snapshots(
            [merge_snapshots(snaps[:cut]), merge_snapshots(snaps[cut:])]
        )
        assert _canon(regrouped) == _canon(merge_snapshots(snaps))

    def test_identity(self):
        assert _canon(merge_snapshots([])) == ((), (), ())
