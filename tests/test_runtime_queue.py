"""Unit tests for the event queue semantics of Section 2.1."""

from repro.runtime import EventQueue, SimEvent


def ev(task, when=0):
    return SimEvent(task_id=task, label=task, handler=None, when=when)


class TestFifoOrder:
    def test_ready_events_pop_in_queue_order(self):
        q = EventQueue("q")
        q.enqueue(ev("a"))
        q.enqueue(ev("b"))
        q.enqueue(ev("c"))
        assert [q.pop_ready(0).task_id for _ in range(3)] == ["a", "b", "c"]

    def test_not_ready_events_are_skipped(self):
        """Events whose constraints have elapsed are processed in the
        order they were queued — a delayed head does not block later
        ready events (this is what queue rule 1's side condition is
        about)."""
        q = EventQueue("q")
        q.enqueue(ev("delayed", when=100))
        q.enqueue(ev("ready", when=0))
        assert q.pop_ready(0).task_id == "ready"
        assert q.pop_ready(0) is None
        assert q.pop_ready(100).task_id == "delayed"

    def test_pop_ready_empty_returns_none(self):
        assert EventQueue("q").pop_ready(0) is None

    def test_equal_deadlines_keep_insertion_order(self):
        q = EventQueue("q")
        q.enqueue(ev("a", when=5))
        q.enqueue(ev("b", when=5))
        assert q.pop_ready(5).task_id == "a"
        assert q.pop_ready(5).task_id == "b"


class TestSendAtFront:
    def test_front_event_jumps_the_queue(self):
        q = EventQueue("q")
        q.enqueue(ev("a"))
        q.enqueue(ev("b"))
        q.enqueue_front(ev("front"))
        assert q.pop_ready(0).task_id == "front"
        assert q.pop_ready(0).task_id == "a"

    def test_successive_fronts_stack(self):
        """Android's enqueue-at-front places each new front message
        before the previous one."""
        q = EventQueue("q")
        q.enqueue_front(ev("f1"))
        q.enqueue_front(ev("f2"))
        assert q.pop_ready(0).task_id == "f2"
        assert q.pop_ready(0).task_id == "f1"

    def test_front_event_beats_ready_delayed_event(self):
        q = EventQueue("q")
        q.enqueue(ev("old", when=0))
        q.enqueue_front(ev("front", when=3))
        assert q.pop_ready(3).task_id == "front"


class TestReadiness:
    def test_has_ready_respects_time(self):
        q = EventQueue("q")
        q.enqueue(ev("a", when=10))
        assert not q.has_ready(9)
        assert q.has_ready(10)

    def test_next_when_is_min_deadline(self):
        q = EventQueue("q")
        q.enqueue(ev("a", when=30))
        q.enqueue(ev("b", when=10))
        assert q.next_when() == 10

    def test_next_when_empty_is_none(self):
        assert EventQueue("q").next_when() is None

    def test_len_and_enqueued_counter(self):
        q = EventQueue("q")
        q.enqueue(ev("a"))
        q.enqueue_front(ev("b"))
        q.pop_ready(0)
        assert len(q) == 1
        assert q.enqueued == 2

    def test_pending_is_a_snapshot(self):
        q = EventQueue("q")
        q.enqueue(ev("a"))
        snapshot = q.pending()
        snapshot.clear()
        assert len(q) == 1
