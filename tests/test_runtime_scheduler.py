"""Scheduler-level tests: budgets, pause, looper quit, shutdown."""

import pytest

from repro.runtime import AndroidSystem, SchedulerError
from repro.trace import End, OpKind


class TestBudgets:
    def test_max_steps_exhaustion_raises(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")

        def spinner(ctx):
            while True:
                yield from ctx.pause()

        app.thread("spin", spinner)
        with pytest.raises(SchedulerError, match="step budget"):
            system.run(max_steps=50)

    def test_max_ms_stops_the_clock(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        ticks = []

        def body(ctx):
            for _ in range(100):
                yield from ctx.sleep(10)
                ticks.append(ctx.now_ms)

        app.thread("t", body)
        system.run(max_ms=55)
        assert ticks and max(ticks) <= 70  # stopped well before 1000ms

    def test_run_is_idempotent_after_quiescence(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        app.thread("t", lambda ctx: None)
        system.run()
        before = len(system.trace())
        # scheduler.shutdown() already closed everything; a second run
        # must not corrupt the trace
        assert len(system.trace()) == before


class TestPause:
    def test_pause_allows_interleaving(self):
        system = AndroidSystem(seed=7)
        app = system.process("app")
        order = []

        def make(name):
            def body(ctx):
                for i in range(3):
                    order.append(name)
                    yield from ctx.pause()
            return body

        app.thread("a", make("a"))
        app.thread("b", make("b"))
        system.run()
        # both threads appear, and not strictly one after the other
        assert set(order) == {"a", "b"}


class TestLooperQuit:
    def test_quit_ends_the_looper(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")

        def body(ctx):
            yield from ctx.quit_looper(main)

        app.thread("t", body)
        system.run()
        trace = system.trace()
        looper_ops = [trace[i].kind for i in trace.ops_of(main)]
        assert looper_ops == [OpKind.BEGIN, OpKind.END]

    def test_quit_discards_pending_delayed_events(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")
        ran = []

        def late(ctx):
            ran.append(True)

        def body(ctx):
            ctx.post(main, late, delay_ms=500, label="late")
            yield from ctx.quit_looper(main)

        app.thread("t", body)
        system.run()
        assert ran == []

    def test_quit_unknown_looper_raises(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")

        def body(ctx):
            yield from ctx.quit_looper("app/ghost")

        app.thread("t", body)
        with pytest.raises(SchedulerError, match="not a looper"):
            system.run()


class TestShutdown:
    def test_all_started_tasks_get_end_records(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")

        def blocked_forever(ctx):
            yield from ctx.sleep(1)
            ctx.post(main, lambda c: None, label="e")
            yield from ctx.wait("never-signalled")

        app.thread("t", blocked_forever, daemon=True)
        system.run()
        trace = system.trace()
        ended = {op.task for op in trace if isinstance(op, End)}
        assert "app/t" in ended  # closed during shutdown
        assert main in ended

    def test_daemon_blocked_threads_do_not_deadlock(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")

        def daemon_body(ctx):
            yield from ctx.wait("never")

        app.thread("d", daemon_body, daemon=True)
        app.thread("t", lambda ctx: ctx.write("x", 1))
        system.run()  # must terminate despite the blocked daemon

    def test_violation_records_capture_location(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")
        holder = app.heap.new("Holder")
        holder.fields["p"] = None

        def crash(ctx):
            ctx.use_field(holder, "p")

        app.thread("t", lambda ctx: ctx.post(main, crash, label="crash"))
        system.run()
        (violation,) = system.violations
        assert violation.label == "crash"
        assert violation.method == "crash"
        assert violation.time > 0
