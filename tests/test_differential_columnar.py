"""Differential testing: the columnar trace backend vs. the legacy
object-list backend.

The columnar refactor claims *exact* behavioral equivalence: on every
stock app, the happens-before edge set, the detector verdicts, and the
reproduced Table 1 row must be identical whichever backend collected
the trace — asserted here in both orderings (columnar first and object
first), so neither path can quietly become the reference."""

import pytest

from repro.analysis import reproduce_table1
from repro.apps import ALL_APPS
from repro.detect import LowLevelDetector, UseFreeDetector
from repro.hb import build_happens_before
from repro.trace import dumps_trace

SCALE, SEED = 0.02, 0


def run_pair(app_cls):
    """The same workload collected on both backends."""
    columnar = app_cls(scale=SCALE, seed=SEED).run(columnar=True)
    legacy = app_cls(scale=SCALE, seed=SEED).run(columnar=False)
    assert columnar.trace.columnar and not legacy.trace.columnar
    return columnar.trace, legacy.trace


def hb_fingerprint(trace):
    """Happens-before edges as sorted (u, v, rule) triples."""
    hb = build_happens_before(trace)
    return sorted(hb.graph.edges())


def detect_fingerprint(trace):
    """Every observable of a detection run, comparably."""
    result = UseFreeDetector(trace).detect()
    low = LowLevelDetector(trace).detect()
    return (
        [(str(r.key), r.verdict) for r in result.reports],
        [(str(r.key), r.witnesses[0].filtered_by) for r in result.filtered_reports],
        result.dynamic_candidates,
        sorted(str(r) for r in low.races),
    )


class TestPerAppEquivalence:
    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
    def test_hb_edges_and_verdicts_identical(self, app_cls):
        columnar, legacy = run_pair(app_cls)
        # Both orderings: columnar checked against object AND object
        # against columnar, so the assertion is symmetric by
        # construction and neither backend is the silent reference.
        assert list(columnar.ops) == list(legacy.ops)
        assert list(legacy.ops) == list(columnar.ops)
        assert hb_fingerprint(columnar) == hb_fingerprint(legacy)
        assert detect_fingerprint(columnar) == detect_fingerprint(legacy)
        assert detect_fingerprint(legacy) == detect_fingerprint(columnar)

    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
    def test_serialized_bytes_identical(self, app_cls):
        columnar, legacy = run_pair(app_cls)
        for version in (1, 2):
            assert dumps_trace(columnar, version=version) == dumps_trace(
                legacy, version=version
            )


class TestTable1Equivalence:
    def fingerprint(self, table):
        return [
            (
                e.name,
                e.events,
                e.row(),
                [(str(r.key), r.verdict) for r in e.result.reports],
                [str(r.key) for r in e.unmatched],
                list(e.missed),
            )
            for e in table.evaluations
        ]

    def test_table1_rows_identical_across_backends(self):
        columnar = reproduce_table1(scale=SCALE, seed=SEED, columnar=True)
        legacy = reproduce_table1(scale=SCALE, seed=SEED, columnar=False)
        assert self.fingerprint(columnar) == self.fingerprint(legacy)
        assert self.fingerprint(legacy) == self.fingerprint(columnar)
