"""The sharded multi-session daemon: router differential tests
(sharded ≡ single-process on all ten apps, GC on and off), transport
backoff, socket ingestion, fault isolation, and the serve/stats CLI."""

import json
import os
import socket
import threading

import pytest

from repro.apps import ALL_APPS, make_app
from repro.cli import main
from repro.stream import (
    Backoff,
    DaemonReport,
    DuplicateSessionError,
    SessionRouter,
    SocketSource,
    StreamAnalyzer,
    StreamProfile,
    concat_sessions,
    merge_profiles,
    tail_chunks,
)
from repro.testing import TraceBuilder
from repro.trace import (
    dumps_trace,
    dumps_trace_bytes,
    encode_data_frame,
    encode_finish_frame,
    encode_mux_header,
    encode_session,
)

SCALE = 0.02
SEED = 1

_PAYLOADS = {}


def app_payloads():
    """session id -> serialized trace bytes, one session per app
    (v2 for half the apps, v3 for the other half — the daemon must
    demultiplex mixed-format fleets)."""
    if not _PAYLOADS:
        for i, app in enumerate(ALL_APPS):
            trace = make_app(app.name, scale=SCALE, seed=SEED).run().trace
            payload = (
                dumps_trace_bytes(trace)
                if i % 2
                else dumps_trace(trace).encode("utf-8")
            )
            _PAYLOADS[app.name] = payload
    return _PAYLOADS


_REFS = {}


def reference_reports(gc: bool):
    """app name -> single-process StreamAnalyzer authoritative
    reports, the byte-identity baseline."""
    if gc not in _REFS:
        refs = {}
        for sid, payload in app_payloads().items():
            analyzer = StreamAnalyzer(gc=gc)
            analyzer.feed(payload)
            refs[sid] = {
                "reports": [str(r) for r in analyzer.finish()],
                "ops": analyzer.profile.ops_ingested,
            }
        _REFS[gc] = refs
    return _REFS[gc]


def mux_stream(payloads, chunk_size=4096):
    buf = bytearray(encode_mux_header())
    frame_lists = [
        encode_session(sid, payload, chunk_size=chunk_size)
        for sid, payload in payloads.items()
    ]
    # round-robin interleave so sessions genuinely share the stream
    for i in range(max(len(f) for f in frame_lists)):
        for frames in frame_lists:
            if i < len(frames):
                buf += frames[i]
    return bytes(buf)


class TestShardedEqualsSingleProcess:
    """The acceptance bar: daemon reports byte-identical to a
    single-process ``StreamAnalyzer`` per session, for ALL ten apps,
    with epoch GC on and off."""

    @pytest.mark.parametrize("gc", [True, False])
    def test_all_ten_apps_match_across_two_shards(self, gc):
        refs = reference_reports(gc)
        stream = mux_stream(app_payloads())
        router = SessionRouter(2, gc=gc)
        for i in range(0, len(stream), 1 << 16):
            router.feed(stream[i : i + (1 << 16)])
        report = router.drain()
        assert sorted(report.sessions) == sorted(refs)
        assert {r.shard for r in report.sessions.values()} == {0, 1}
        for sid, ref in refs.items():
            session = report.sessions[sid]
            assert session.error is None
            assert session.ended
            assert session.reports == ref["reports"], sid
            assert session.ops == ref["ops"], sid

    def test_inline_mode_matches_too(self):
        refs = reference_reports(True)
        stream = mux_stream(app_payloads())
        router = SessionRouter(0)  # zero workers: analyze in-process
        router.feed(stream)
        report = router.drain()
        for sid, ref in refs.items():
            assert report.sessions[sid].reports == ref["reports"], sid

    def test_shard_assignment_is_consistent_hashing(self):
        refs = reference_reports(True)
        router = SessionRouter(4)
        stream = mux_stream(app_payloads())
        router.feed(stream)
        report = router.drain()
        for sid, session in report.sessions.items():
            assert session.shard == router.ring.shard_of(sid)
        assert sum(r.ops for r in report.sessions.values()) == sum(
            ref["ops"] for ref in refs.values()
        )


class TestFaultIsolation:
    def test_damaged_session_does_not_poison_neighbours(self):
        sid, payload = next(iter(app_payloads().items()))
        ref = reference_reports(True)[sid]
        stream = (
            encode_mux_header()
            + encode_data_frame("bad", b"\x93garbage that is not a trace")
            + b"".join(encode_session(sid, payload))
        )
        router = SessionRouter(1)
        router.feed(stream)
        report = router.drain()
        assert report.sessions["bad"].error is not None
        assert report.sessions["bad"].degraded
        assert report.sessions[sid].error is None
        assert report.sessions[sid].reports == ref["reports"]

    def test_unended_session_is_marked_drained(self):
        sid, payload = next(iter(app_payloads().items()))
        router = SessionRouter(1)
        router.feed(encode_mux_header() + encode_data_frame(sid, payload))
        report = router.drain()  # no END frame: daemon drain closes it
        assert report.sessions[sid].ended is False
        assert report.sessions[sid].reports  # still analyzed


class TestProfiles:
    def test_merge_sums_every_counter(self):
        a = StreamProfile(records_ingested=3, ops_ingested=5, polls=1)
        b = StreamProfile(records_ingested=4, peak_closure_bytes=100)
        merged = merge_profiles([a, b])
        assert merged.records_ingested == 7
        assert merged.ops_ingested == 5
        assert merged.peak_closure_bytes == 100
        assert merge_profiles([]).records_ingested == 0

    def test_daemon_report_merges_shard_profiles(self):
        refs = reference_reports(True)
        router = SessionRouter(2)
        router.feed(mux_stream(app_payloads()))
        report = router.drain()
        assert len(report.shard_profiles) == 2
        assert report.merged.ops_ingested == sum(
            ref["ops"] for ref in refs.values()
        )
        assert len(report.worker_profiles) == 2
        assert all(p.pid != os.getpid() for p in report.worker_profiles)

    def test_report_json_round_trips(self):
        router = SessionRouter(0)
        sid, payload = next(iter(app_payloads().items()))
        router.feed(encode_mux_header() + b"".join(encode_session(sid, payload)))
        report = router.drain()
        back = DaemonReport.from_dict(json.loads(report.to_json()))
        assert back.sessions[sid].reports == report.sessions[sid].reports
        assert back.merged.ops_ingested == report.merged.ops_ingested
        assert back.format() == report.format()


class TestBackoff:
    """Satellite: --follow must not busy-poll; the backoff doubles up
    to its cap and any data resets it."""

    def test_delays_grow_exponentially_to_the_cap(self):
        slept = []
        backoff = Backoff(initial=0.05, cap=0.4)
        for _ in range(6):
            backoff.wait(sleep=slept.append)
        assert slept == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]
        assert backoff.sleep_count == 6
        assert backoff.slept_total == pytest.approx(sum(slept))

    def test_reset_drops_back_to_initial(self):
        slept = []
        backoff = Backoff(initial=0.1, cap=1.0)
        backoff.wait(sleep=slept.append)
        backoff.wait(sleep=slept.append)
        backoff.reset()
        backoff.wait(sleep=slept.append)
        assert slept == [0.1, 0.2, 0.1]

    def test_validates_schedule(self):
        with pytest.raises(ValueError):
            Backoff(initial=0.0)
        with pytest.raises(ValueError):
            Backoff(initial=0.5, cap=0.1)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)

    def test_idle_tail_sleeps_exponentially_not_at_a_fixed_rate(self):
        """The busy-poll regression test: over an idle stretch the
        tail must take exponentially *fewer* wakeups than fixed-rate
        polling — counted, not timed."""
        reads = iter([b"x"] + [b""] * 8 + [b"y"] + [b""] * 8)
        slept = []
        backoff = Backoff(initial=0.05, cap=0.8)
        stop = {"n": 0}

        def should_stop():
            stop["n"] += 1
            return stop["n"] > 18

        chunks = list(
            tail_chunks(
                lambda size: next(reads, b""),
                follow=True,
                backoff=backoff,
                sleep=slept.append,
                should_stop=should_stop,
            )
        )
        assert chunks == [b"x", b"y"]
        # 18 idle reads but a doubling schedule: the first idle run
        # sleeps 0.05..0.8 and the data byte resets it
        assert backoff.sleep_count == len(slept) == 18
        assert slept[:5] == [0.05, 0.1, 0.2, 0.4, 0.8]
        assert slept[8:12] == [0.05, 0.1, 0.2, 0.4]  # reset by b"y"
        # fixed-rate polling at the initial interval would have slept
        # 18 * 0.05 = 0.9s total; backoff idles far longer per wakeup
        assert sum(slept) > 0.9 * 5

    def test_tail_without_follow_stops_at_eof(self):
        reads = iter([b"a", b"b"])
        chunks = list(tail_chunks(lambda size: next(reads, b"")))
        assert chunks == [b"a", b"b"]


class TestDuplicateSessions:
    def small_trace(self):
        b = TraceBuilder()
        b.thread("T")
        b.begin("T")
        b.write("T", "x")
        b.end("T")
        return b.build()

    def test_duplicate_ids_raise_a_named_error(self):
        with pytest.raises(DuplicateSessionError, match="'s1'") as ei:
            concat_sessions(self.small_trace(), 3, ids=["s0", "s1", "s1"])
        assert ei.value.session == "s1"

    def test_duplicate_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            concat_sessions(self.small_trace(), 2, ids=["a", "a"])

    def test_id_count_must_match_sessions(self):
        with pytest.raises(ValueError, match="expected 2 session ids"):
            concat_sessions(self.small_trace(), 2, ids=["only-one"])

    def test_custom_distinct_ids_are_fine(self):
        out = concat_sessions(self.small_trace(), 2, ids=["left", "right"])
        assert {info.task.split(":")[0] for info in out.tasks.values()} == {
            "left",
            "right",
        }


class TestSocketIngestion:
    def test_three_concurrent_sessions_over_a_socket(self, tmp_path):
        """The soak shape: concurrent uploaders, one router, clean
        drain with every session accounted for."""
        sid, payload = next(iter(app_payloads().items()))
        ref = reference_reports(True)[sid]
        path = str(tmp_path / "daemon.sock")
        source = SocketSource.unix(path)
        router = SessionRouter(2)

        def upload(k):
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.connect(path)
            client.sendall(encode_mux_header())
            for frame in encode_session(f"up-{k}", payload, chunk_size=2048):
                client.sendall(frame)
            client.close()

        threads = [
            threading.Thread(target=upload, args=(k,)) for k in range(3)
        ]
        for t in threads:
            t.start()
        channels = {}
        closed = 0
        try:
            for event in source.events(timeout=0.2):
                if event is None:
                    continue
                if event[0] == "open":
                    channels[event[1]] = router.channel(event[1])
                elif event[0] == "chunk":
                    channels[event[1]].feed(event[2])
                elif event[0] == "close":
                    channels.pop(event[1]).close()
                    closed += 1
                    if closed == 3:
                        break
        finally:
            source.stop()
        for t in threads:
            t.join()
        report = router.drain()
        assert sorted(report.sessions) == ["up-0", "up-1", "up-2"]
        for session in report.sessions.values():
            assert session.error is None
            assert session.reports == ref["reports"]


class TestServeCli:
    def test_file_mode_writes_a_daemon_report(self, tmp_path, capsys):
        payloads = dict(list(app_payloads().items())[:2])
        stream = mux_stream(payloads)
        mux_path = tmp_path / "fleet.mux"
        mux_path.write_bytes(stream)
        json_path = tmp_path / "daemon.json"
        rc = main(
            [
                "serve",
                str(mux_path),
                "--shards",
                "2",
                "--json",
                str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 sessions over 2 shard(s)" in out
        report = DaemonReport.from_dict(json.loads(json_path.read_text()))
        refs = reference_reports(True)
        for sid in payloads:
            assert report.sessions[sid].reports == refs[sid]["reports"]

    def test_plain_unenveloped_input_is_one_session(self, tmp_path, capsys):
        sid, payload = next(iter(app_payloads().items()))
        path = tmp_path / "single.trace"
        path.write_bytes(payload)
        rc = main(["serve", str(path), "--shards", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 sessions" in out

    def test_damaged_session_fails_without_salvage(self, tmp_path, capsys):
        stream = (
            encode_mux_header()
            + encode_data_frame("bad", b"\x93not a real v3 stream")
            + encode_finish_frame()
        )
        path = tmp_path / "bad.mux"
        path.write_bytes(stream)
        assert main(["serve", str(path), "--shards", "0"]) == 1
        capsys.readouterr()
        assert main(["serve", str(path), "--shards", "0", "--salvage"]) == 0

    def test_stats_daemon_aggregates_the_report(self, tmp_path, capsys):
        payloads = dict(list(app_payloads().items())[:2])
        mux_path = tmp_path / "fleet.mux"
        mux_path.write_bytes(mux_stream(payloads))
        json_path = tmp_path / "daemon.json"
        assert (
            main(
                ["serve", str(mux_path), "--shards", "0", "--json",
                 str(json_path)]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(["stats", str(json_path), "--daemon"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 sessions" in out
        assert "stream profile:" in out
