"""Rule-by-rule tests of the causality model (Section 3.3)."""

import pytest

from repro import CAFA_MODEL, CONVENTIONAL_MODEL, ModelConfig, build_happens_before
from repro.hb import HBCycleError
from repro.testing import TraceBuilder


class TestProgramOrder:
    def test_ops_of_one_task_are_ordered(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        i = b.read("t", "x")
        j = b.write("t", "y")
        b.end("t")
        hb = build_happens_before(b.build())
        assert hb.ordered(i, j)
        assert not hb.ordered(j, i)

    def test_events_of_a_looper_have_no_program_order(self):
        """The core relaxation: sequential execution on one looper does
        not imply happens-before (Section 3.1)."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T1"); b.send("T1", "A"); b.end("T1")
        b.begin("T2"); b.send("T2", "B"); b.end("T2")
        b.begin("A"); i = b.write("A", "x"); b.end("A")
        b.begin("B"); j = b.read("B", "x"); b.end("B")
        hb = build_happens_before(b.build())
        assert hb.concurrent(i, j)

    def test_conventional_model_orders_same_looper_events(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T1"); b.send("T1", "A"); b.end("T1")
        b.begin("T2"); b.send("T2", "B"); b.end("T2")
        b.begin("A"); i = b.write("A", "x"); b.end("A")
        b.begin("B"); j = b.read("B", "x"); b.end("B")
        hb = build_happens_before(b.build(), CONVENTIONAL_MODEL)
        assert hb.ordered(i, j)


class TestForkJoin:
    def _trace(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        f = b.fork("t", "u")
        b.begin("u")
        w = b.write("u", "x")
        b.end("u")
        j = b.join("t", "u")
        r = b.read("t", "x")
        b.end("t")
        return b.build(), f, w, j, r

    def test_fork_orders_parent_before_child(self):
        trace, f, w, j, r = self._trace()
        hb = build_happens_before(trace)
        assert hb.ordered(f, w)

    def test_join_orders_child_before_parent(self):
        trace, f, w, j, r = self._trace()
        hb = build_happens_before(trace)
        assert hb.ordered(w, r)

    def test_disabled_fork_join_drops_both(self):
        trace, f, w, j, r = self._trace()
        hb = build_happens_before(trace, ModelConfig(fork_join=False))
        assert not hb.ordered(f, w)
        assert not hb.ordered(w, r)


class TestSignalWait:
    def test_notify_orders_before_matched_wait(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        w1 = b.write("t", "x")
        ticket = b.next_ticket()
        b.notify("t", "mon", ticket=ticket)
        b.wait("u", "mon", ticket=ticket)
        r1 = b.read("u", "x")
        b.end("t")
        b.end("u")
        hb = build_happens_before(b.build())
        assert hb.ordered(w1, r1)

    def test_unmatched_tickets_fall_back_to_trace_order(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        n = b.notify("t", "mon", ticket=-1)
        w = b.wait("u", "mon", ticket=-1)
        b.end("t")
        b.end("u")
        hb = build_happens_before(b.build())
        assert hb.ordered(n, w)

    def test_different_monitors_unordered(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        n = b.notify("t", "m1", ticket=-1)
        w = b.wait("u", "m2", ticket=-1)
        b.end("t")
        b.end("u")
        hb = build_happens_before(b.build())
        assert not hb.ordered(n, w)


class TestListenerRule:
    def test_register_orders_before_perform(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.thread("S")
        b.event("E", looper="L")
        b.begin("S"); b.send("S", "E"); b.end("S")
        b.begin("T")
        reg = b.register("T", "click")
        b.end("T")
        b.begin("E")
        perf = b.perform("E", "click")
        b.end("E")
        hb = build_happens_before(b.build())
        assert hb.ordered(reg, perf)

    def test_missing_register_means_no_edge(self):
        """This is how Type I false positives arise (Section 6.3)."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.thread("S")
        b.event("E", looper="L")
        b.begin("S"); b.send("S", "E"); b.end("S")
        b.begin("T")
        w = b.write("T", "x")
        b.end("T")
        b.begin("E")
        b.perform("E", "click")
        r = b.read("E", "x")
        b.end("E")
        hb = build_happens_before(b.build())
        assert hb.concurrent(w, r)


class TestExternalInputRule:
    def _trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("e1", looper="L", external=True)
        b.event("e2", looper="L", external=True)
        b.begin("e1"); b.end("e1")
        b.begin("e2"); b.end("e2")
        return b.build()

    def test_external_events_chained(self):
        hb = build_happens_before(self._trace())
        assert hb.event_ordered("e1", "e2")

    def test_rule_can_be_disabled(self):
        hb = build_happens_before(self._trace(), ModelConfig(external_input=False))
        assert not hb.event_ordered("e1", "e2")


class TestIpcRule:
    def test_call_orders_into_handler_and_reply_back(self):
        b = TraceBuilder()
        b.thread("app")
        b.thread("svc")
        b.begin("app")
        b.begin("svc")
        w = b.write("app", "arg")
        call = b.ipc_call("app", txn=9, service="gps")
        handle = b.ipc_handle("svc", txn=9, service="gps")
        r = b.read("svc", "arg")
        w2 = b.write("svc", "result")
        reply = b.ipc_reply("svc", txn=9, service="gps")
        ret = b.ipc_return("app", txn=9, service="gps")
        r2 = b.read("app", "result")
        b.end("app")
        b.end("svc")
        hb = build_happens_before(b.build())
        assert hb.ordered(w, r)
        assert hb.ordered(w2, r2)

    def test_unrelated_transactions_unordered(self):
        b = TraceBuilder()
        b.thread("a")
        b.thread("b")
        b.begin("a")
        b.begin("b")
        c1 = b.ipc_call("a", txn=1, service="s")
        h2 = b.ipc_handle("b", txn=2, service="s")
        b.end("a")
        b.end("b")
        hb = build_happens_before(b.build())
        assert not hb.ordered(c1, h2)


class TestLockEdges:
    def _trace(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.acquire("t", "lk")
        w = b.write("t", "x")
        b.release("t", "lk")
        b.acquire("u", "lk")
        r = b.read("u", "x")
        b.release("u", "lk")
        b.end("t")
        b.end("u")
        return b.build(), w, r

    def test_cafa_model_derives_no_order_from_locks(self):
        """Section 3.1: no unlock -> lock happens-before."""
        trace, w, r = self._trace()
        hb = build_happens_before(trace)
        assert hb.concurrent(w, r)

    def test_lock_edges_option_orders_critical_sections(self):
        trace, w, r = self._trace()
        hb = build_happens_before(trace, ModelConfig(lock_edges=True))
        assert hb.ordered(w, r)


class TestSendRule:
    def test_send_orders_before_event_begin(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("E", looper="L")
        b.begin("T")
        w = b.write("T", "x")
        b.send("T", "E")
        b.end("T")
        b.begin("E")
        r = b.read("E", "x")
        b.end("E")
        hb = build_happens_before(b.build())
        assert hb.ordered(w, r)


class TestCycleDetection:
    def test_inconsistent_trace_raises(self):
        # Two events that each "send" the other cannot exist in a real
        # execution; the builder must refuse rather than loop.
        b = TraceBuilder()
        b.looper("L1")
        b.looper("L2")
        b.event("A", looper="L1")
        b.event("B", looper="L2")
        b.begin("A")
        b.send("A", "B")
        b.end("A")
        b.begin("B")
        b.send("B", "A")  # B claims to have sent A, which already ran
        b.end("B")
        with pytest.raises(HBCycleError):
            build_happens_before(b.build(validate=False))


class TestExplain:
    def test_explain_returns_a_rule_path(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        f = b.fork("t", "u")
        b.begin("u")
        w = b.write("u", "x")
        b.end("u")
        b.end("t")
        hb = build_happens_before(b.build())
        steps = hb.explain(f, w)
        assert steps is not None
        rules = [rule for _, rule in steps]
        assert "fork" in rules

    def test_explain_none_when_unordered(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        i = b.read("t", "x")
        j = b.write("u", "x")
        b.end("t")
        b.end("u")
        hb = build_happens_before(b.build())
        assert hb.explain(i, j) is None


class TestModelApplicability:
    def test_shared_queue_between_loopers_rejected(self):
        """Section 3.1: the model does not apply when multiple looper
        threads drain one event queue."""
        from repro.hb import ModelNotApplicableError

        b = TraceBuilder()
        b.looper("L1")
        b.looper("L2")
        b.thread("T")
        b.event("A", looper="L1", queue="shared")
        b.event("B", looper="L2", queue="shared")
        b.begin("T")
        b.send("T", "A")
        b.send("T", "B")
        b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        with pytest.raises(ModelNotApplicableError, match="one\\s+looper"):
            build_happens_before(b.build())

    def test_distinct_queues_are_fine(self):
        b = TraceBuilder()
        b.looper("L1")
        b.looper("L2")
        b.thread("T")
        b.event("A", looper="L1")
        b.event("B", looper="L2")
        b.begin("T")
        b.send("T", "A")
        b.send("T", "B")
        b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        build_happens_before(b.build())  # must not raise
