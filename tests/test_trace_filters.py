"""Tests for trace slicing utilities."""

import pytest

from repro.detect import detect_use_free_races
from repro.trace import TaskKind
from repro.trace.filters import (
    filter_process,
    filter_tasks,
    filter_time_window,
    slice_for_field,
    tasks_touching_field,
)
from repro.testing import TraceBuilder


def two_process_trace():
    b = TraceBuilder()
    b.thread("t1", process="app")
    b.thread("t2", process="service")
    b.begin("t1")
    b.begin("t2")
    b.write("t1", "x")
    b.read("t2", "y")
    b.end("t1")
    b.end("t2")
    return b.build()


class TestFilters:
    def test_filter_process_keeps_whole_tasks(self):
        sliced = filter_process(two_process_trace(), "app")
        assert set(sliced.tasks) == {"t1"}
        assert all(op.task == "t1" for op in sliced.ops)
        sliced.validate()

    def test_filter_tasks_by_kind(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("t")
        b.event("E", looper="L")
        b.begin("t"); b.send("t", "E"); b.end("t")
        b.begin("E"); b.end("E")
        sliced = filter_tasks(
            b.build(), lambda info: info.task_kind is TaskKind.EVENT
        )
        assert set(sliced.tasks) == {"E"}

    def test_time_window_keeps_fully_contained_tasks(self):
        b = TraceBuilder()
        b.thread("early")
        b.thread("late")
        b.begin("early")
        b.end("early")
        b.begin("late")
        b.end("late")
        trace = b.build()
        hi = trace[1].time  # end of "early"
        sliced = filter_time_window(trace, 0, hi)
        assert set(sliced.tasks) == {"early"}

    def test_tasks_touching_field(self):
        b = TraceBuilder()
        b.thread("u")
        b.thread("f")
        b.thread("other")
        b.begin("u"); b.begin("f"); b.begin("other")
        b.ptr_read("u", ("obj", 1, "db"), object_id=3, method="m", pc=0)
        b.ptr_write("f", ("obj", 1, "db"), value=None, method="m", pc=0)
        b.read("other", "x")
        b.end("u"); b.end("f"); b.end("other")
        assert tasks_touching_field(b.build(), "db") == {"u", "f"}

    def test_slice_for_field_preserves_the_race(self):
        """Slicing away unrelated events keeps the race detectable."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.event("noise", looper="L")
        b.begin("T1"); b.send("T1", "A"); b.send("T1", "noise", delay=9); b.end("T1")
        b.begin("T2"); b.send("T2", "B"); b.end("T2")
        b.begin("A")
        b.ptr_read("A", ("obj", 1, "p"), object_id=9, method="onUse", pc=0)
        b.deref("A", object_id=9, method="onUse", pc=1)
        b.end("A")
        b.begin("B")
        b.ptr_write("B", ("obj", 1, "p"), value=None, method="onFree", pc=0)
        b.end("B")
        b.begin("noise"); b.read("noise", "q"); b.end("noise")
        trace = b.build()
        sliced = slice_for_field(trace, "p")
        assert "noise" not in sliced.tasks
        result = detect_use_free_races(sliced)
        assert result.report_count() == 1

    def test_slice_for_missing_field_keeps_everything(self):
        trace = two_process_trace()
        sliced = slice_for_field(trace, "ghost")
        assert set(sliced.tasks) == set(trace.tasks)

    def test_slicing_cannot_hide_races_between_kept_tasks(self):
        """Dropping tasks only removes HB edges: a race between kept
        tasks survives any slice containing both."""
        b = TraceBuilder()
        b.thread("u")
        b.thread("f")
        b.thread("spectator")
        b.begin("u"); b.begin("f"); b.begin("spectator")
        b.ptr_read("u", ("obj", 1, "p"), object_id=9, method="use", pc=0)
        b.deref("u", object_id=9, method="use", pc=1)
        b.ptr_write("f", ("obj", 1, "p"), value=None, method="free", pc=0)
        b.end("u"); b.end("f"); b.end("spectator")
        full = b.build()
        sliced = filter_tasks(full, lambda info: info.task != "spectator")
        assert detect_use_free_races(full).report_count() == 1
        assert detect_use_free_races(sliced).report_count() == 1
