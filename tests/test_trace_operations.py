"""Unit tests for the trace operation vocabulary."""

import pytest

from repro.trace import (
    Begin,
    Branch,
    BranchKind,
    Deref,
    End,
    Fork,
    IpcCall,
    Notify,
    OpKind,
    PtrRead,
    PtrWrite,
    Read,
    Send,
    SendAtFront,
    SYNC_KINDS,
    Wait,
    Write,
    operation_from_dict,
)


class TestOperationKinds:
    def test_each_figure3_operation_has_its_paper_name(self):
        assert Begin.kind.value == "begin"
        assert End.kind.value == "end"
        assert Read.kind.value == "rd"
        assert Write.kind.value == "wr"
        assert Send.kind.value == "send"
        assert SendAtFront.kind.value == "sendAtFront"

    def test_kind_is_class_attribute_not_instance_field(self):
        op = Read(task="t", var="x")
        assert op.kind is OpKind.READ
        assert Read.kind is OpKind.READ

    def test_sync_kinds_cover_all_cross_task_edges(self):
        for kind in (
            OpKind.FORK,
            OpKind.JOIN,
            OpKind.WAIT,
            OpKind.NOTIFY,
            OpKind.SEND,
            OpKind.SEND_AT_FRONT,
            OpKind.REGISTER,
            OpKind.PERFORM,
            OpKind.IPC_CALL,
            OpKind.IPC_REPLY,
        ):
            assert kind in SYNC_KINDS

    def test_memory_accesses_are_not_sync_kinds(self):
        for kind in (OpKind.READ, OpKind.WRITE, OpKind.PTR_READ, OpKind.DEREF):
            assert kind not in SYNC_KINDS


class TestPtrWrite:
    def test_null_write_is_a_free(self):
        op = PtrWrite(task="e", address=("obj", 1, "f"), value=None, container=1)
        assert op.is_free

    def test_reference_write_is_an_allocation(self):
        op = PtrWrite(task="e", address=("obj", 1, "f"), value=7, container=1)
        assert not op.is_free


class TestSerializationRoundTrip:
    @pytest.mark.parametrize(
        "op",
        [
            Begin(task="t", time=3),
            End(task="t", time=9),
            Read(task="t", time=1, var="x", site="m:1"),
            Write(task="t", time=2, var="y", site="m:2"),
            Fork(task="t", time=1, child="u"),
            Wait(task="t", time=5, monitor="m", ticket=4),
            Notify(task="t", time=5, monitor="m", ticket=4),
            Send(task="t", time=1, event="e", delay=25, queue="q"),
            SendAtFront(task="t", time=1, event="e", queue="q"),
            PtrRead(task="e", time=7, address=("obj", 3, "p"), object_id=9, method="m", pc=4),
            PtrWrite(task="e", time=8, address=("static", "C", "p"), value=None, container=None, method="m", pc=5),
            Deref(task="e", time=9, object_id=9, method="m", pc=6),
            Branch(task="e", time=10, branch_kind=BranchKind.IF_NEZ, pc=3, target=7, object_id=2, method="m"),
            IpcCall(task="t", time=2, txn=17, service="gps", oneway=True),
        ],
    )
    def test_round_trip(self, op):
        assert operation_from_dict(op.to_dict()) == op

    def test_address_tuples_survive_json_lists(self):
        op = PtrRead(task="e", address=("obj", 5, "ptr"), object_id=1)
        data = op.to_dict()
        assert data["address"] == ["obj", 5, "ptr"]
        back = operation_from_dict(data)
        assert back.address == ("obj", 5, "ptr")

    def test_branch_kind_enum_round_trips_as_string(self):
        op = Branch(task="e", branch_kind=BranchKind.IF_EQ, pc=1, target=2, object_id=3)
        data = op.to_dict()
        assert data["branch_kind"] == "if-eq"
        assert operation_from_dict(data).branch_kind is BranchKind.IF_EQ
