"""Tests for the low-level conflicting-access baseline detector."""

from repro.detect import LowLevelDetector, detect_low_level_races
from repro.testing import TraceBuilder


def unordered_rw_trace():
    """Two events on one looper, sent by unordered threads: a
    read-write conflict on x (Figure 2's shape)."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T1")
    b.thread("T2")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.begin("T1"); b.send("T1", "A"); b.end("T1")
    b.begin("T2"); b.send("T2", "B"); b.end("T2")
    b.begin("A"); b.read("A", "x", site="A:rd"); b.end("A")
    b.begin("B"); b.write("B", "x", site="B:wr"); b.end("B")
    return b


class TestLowLevel:
    def test_unordered_read_write_reported(self):
        result = detect_low_level_races(unordered_rw_trace().build())
        assert result.race_count() == 1
        (race,) = result.races
        assert race.var_class == "x"
        assert not race.write_write

    def test_read_read_is_not_a_race(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t"); b.read("t", "x"); b.end("t")
        b.begin("u"); b.read("u", "x"); b.end("u")
        assert detect_low_level_races(b.build()).race_count() == 0

    def test_write_write_flagged(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t"); b.write("t", "x", site="t:wr"); b.end("t")
        b.begin("u"); b.write("u", "x", site="u:wr"); b.end("u")
        (race,) = detect_low_level_races(b.build()).races
        assert race.write_write

    def test_ordered_accesses_not_reported(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.write("t", "x")
        b.fork("t", "u")
        b.begin("u")
        b.read("u", "x")
        b.end("u")
        b.end("t")
        assert detect_low_level_races(b.build()).race_count() == 0

    def test_same_task_accesses_not_reported(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.write("t", "x")
        b.read("t", "x")
        b.end("t")
        assert detect_low_level_races(b.build()).race_count() == 0

    def test_lock_protected_pair_dismissed(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.acquire("t", "L")
        b.write("t", "x")
        b.release("t", "L")
        b.acquire("u", "L")
        b.read("u", "x")
        b.release("u", "L")
        b.end("t")
        b.end("u")
        assert detect_low_level_races(b.build()).race_count() == 0

    def test_pointer_accesses_count_as_memory_accesses(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.ptr_read("t", ("obj", 1, "p"), object_id=9, method="t", pc=0)
        b.ptr_write("u", ("obj", 1, "p"), value=None, method="u", pc=0)
        b.end("t")
        b.end("u")
        (race,) = detect_low_level_races(b.build()).races
        assert race.var_class == "ptr:*.p"

    def test_static_dedup_over_dynamic_instances(self):
        """Many dynamic pairs from the same pair of sites: one report."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        readers, writers = [], []
        for i in range(3):
            r, w = f"R{i}", f"W{i}"
            b.event(r, looper="L")
            b.event(w, looper="L")
            readers.append(r)
            writers.append(w)
        b.begin("T1")
        for i, r in enumerate(readers):
            b.send("T1", r, delay=i)
        b.end("T1")
        b.begin("T2")
        for i, w in enumerate(writers):
            b.send("T2", w, delay=i)
        b.end("T2")
        for i in range(3):
            b.begin(readers[i]); b.read(readers[i], "x", site="rd"); b.end(readers[i])
            b.begin(writers[i]); b.write(writers[i], "x", site="wr"); b.end(writers[i])
        result = detect_low_level_races(b.build())
        assert result.race_count() == 1

    def test_sampling_budget_is_respected(self):
        detector = LowLevelDetector(unordered_rw_trace().build(), samples_per_side=1)
        assert detector.detect().race_count() == 1
