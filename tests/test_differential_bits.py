"""Differential testing: the chunked sparse-bitset closure engine vs.
the legacy dense big-int representation.

The sparse refactor claims *exact* behavioral equivalence: on every
stock app, whichever representation stores the closure, the
happens-before edge set, the reachability vectors, the incremental
propagation work, the detector verdicts, and the reproduced Table 1
row must be identical — on both trace store backends, and asserted in
both orderings so neither representation quietly becomes the
reference.  The staged-round oracle must agree with the builder under
either representation as well."""

import random

import pytest

from repro.analysis import reproduce_table1
from repro.apps import ALL_APPS
from repro.detect import DetectorOptions, LowLevelDetector, UseFreeDetector
from repro.hb import build_happens_before
from repro.hb.reference import ReferenceHappensBefore

SCALE, SEED = 0.02, 0


def app_trace(app_cls, columnar=True):
    return app_cls(scale=SCALE, seed=SEED).run(columnar=columnar).trace


def build_both(trace):
    sparse = build_happens_before(trace)  # dense_bits=False is the default
    dense = build_happens_before(trace, dense_bits=True)
    assert not sparse.graph.dense_bits and dense.graph.dense_bits
    return sparse, dense


def detect_fingerprint(trace, dense_bits):
    """Every observable of a detection run, comparably."""
    options = DetectorOptions(dense_bits=dense_bits)
    result = UseFreeDetector(trace, options).detect()
    low = LowLevelDetector(trace, dense_bits=dense_bits).detect()
    return (
        [(str(r.key), r.verdict) for r in result.reports],
        [(str(r.key), r.witnesses[0].filtered_by) for r in result.filtered_reports],
        result.dynamic_candidates,
        sorted(str(r) for r in low.races),
    )


def _sample_pairs(n, k, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(k)]


class TestPerAppEquivalence:
    @pytest.mark.parametrize(
        "columnar", [True, False], ids=["columnar", "legacy-store"]
    )
    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
    def test_hb_edges_and_closure_identical(self, app_cls, columnar):
        trace = app_trace(app_cls, columnar=columnar)
        sparse, dense = build_both(trace)
        assert sorted(sparse.graph.edges()) == sorted(dense.graph.edges())
        # SparseBits == int compares the materialized bit pattern, so
        # the vectors are comparable elementwise in either ordering.
        assert sparse.graph.reach_vector() == dense.graph.reach_vector()
        assert dense.graph.reach_vector() == sparse.graph.reach_vector()
        assert sparse.iterations == dense.iterations
        assert sparse.derived_edges == dense.derived_edges
        # The incremental propagation does the same work bit for bit.
        assert sparse.graph.bits_propagated == dense.graph.bits_propagated

    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
    def test_query_verdicts_identical(self, app_cls):
        trace = app_trace(app_cls)
        sparse, dense = build_both(trace)
        pairs = _sample_pairs(len(trace), 400, seed=3)
        for a, b in pairs:
            assert sparse.ordered(a, b) == dense.ordered(a, b), (a, b)
        assert sparse.concurrent_pairs(pairs) == dense.concurrent_pairs(pairs)

    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
    def test_detector_verdicts_identical(self, app_cls):
        trace = app_trace(app_cls)
        assert detect_fingerprint(trace, False) == detect_fingerprint(trace, True)
        assert detect_fingerprint(trace, True) == detect_fingerprint(trace, False)


class TestOracleAgreement:
    """The staged-round oracle agrees with the builder under either
    representation — and with itself across representations."""

    @pytest.mark.parametrize("app_name", ["mytracks", "browser", "camera"])
    @pytest.mark.parametrize("dense_bits", [False, True], ids=["sparse", "dense"])
    def test_builder_matches_reference_oracle(self, app_name, dense_bits):
        app_cls = next(a for a in ALL_APPS if a.name == app_name)
        trace = app_cls(scale=0.01, seed=SEED).run().trace
        hb = build_happens_before(trace, dense_bits=dense_bits)
        oracle = ReferenceHappensBefore(trace, dense_bits=dense_bits)
        for a, b in _sample_pairs(len(trace), 600, seed=7):
            assert hb.ordered(a, b) == oracle.ordered(a, b), (a, b)

    def test_oracle_agrees_with_itself_across_representations(self):
        app_cls = next(a for a in ALL_APPS if a.name == "mytracks")
        trace = app_cls(scale=0.01, seed=SEED).run().trace
        sparse = ReferenceHappensBefore(trace)
        dense = ReferenceHappensBefore(trace, dense_bits=True)
        for a, b in _sample_pairs(len(trace), 600, seed=11):
            assert sparse.ordered(a, b) == dense.ordered(a, b), (a, b)


class TestTable1Equivalence:
    def fingerprint(self, table):
        return [
            (
                e.name,
                e.events,
                e.row(),
                [(str(r.key), r.verdict) for r in e.result.reports],
                [str(r.key) for r in e.unmatched],
                list(e.missed),
            )
            for e in table.evaluations
        ]

    @pytest.mark.parametrize(
        "columnar", [True, False], ids=["columnar", "legacy-store"]
    )
    def test_table1_rows_identical_across_representations(self, columnar):
        sparse = reproduce_table1(scale=SCALE, seed=SEED, columnar=columnar)
        dense = reproduce_table1(
            scale=SCALE,
            seed=SEED,
            columnar=columnar,
            options=DetectorOptions(dense_bits=True),
        )
        assert self.fingerprint(sparse) == self.fingerprint(dense)
        assert self.fingerprint(dense) == self.fingerprint(sparse)
