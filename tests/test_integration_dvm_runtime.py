"""Integration tests: real mini-DVM bytecode running inside simulated
events, with the detector consuming the resulting trace."""

import pytest

from repro.detect import detect_use_free_races
from repro.dvm import MethodBuilder
from repro.runtime import AndroidSystem
from repro.trace import Branch, Deref, MethodEnter, PtrRead, PtrWrite


def guarded_onfocus():
    """Figure 5 onFocus as bytecode: if (handler != null) handler.run()."""
    m = MethodBuilder("Term.onFocus", params=1)
    m.iget_object(1, 0, "handler")           # pc 0
    m.if_eqz(1, "skip")                      # pc 1
    m.invoke("Handler.run", receiver=1)      # pc 2
    m.label("skip")
    m.return_void()                          # pc 3
    return m.build()


def unguarded_use():
    m = MethodBuilder("Term.redraw", params=1)
    m.iget_object(1, 0, "handler")
    m.invoke("Handler.run", receiver=1)
    m.return_void()
    return m.build()


def free_method():
    m = MethodBuilder("Term.onPause", params=1)
    m.const_null(1)
    m.iput_object(1, 0, "handler")
    m.return_void()
    return m.build()


def build_system(use_method):
    system = AndroidSystem(seed=3)
    app = system.process("app")
    main = app.looper("main")
    for method in (guarded_onfocus(), unguarded_use(), free_method()):
        app.program.add_method(method)
    app.program.add_intrinsic("Handler.run", lambda args: None)
    view = app.heap.new("TerminalView")
    view.fields["handler"] = app.heap.new("Handler")

    def use_event(ctx):
        ctx.call_method(use_method, [view])

    def free_event(ctx):
        ctx.call_method("Term.onPause", [view])

    def poster(ctx):
        yield from ctx.sleep(10)
        ctx.post(main, use_event, label="useEvent")

    app.thread("poster", poster)

    from repro.runtime import ExternalSource

    src = ExternalSource("user")
    src.at(40, main, free_event, "freeEvent")
    src.attach(system, app)
    system.run(max_ms=1000)
    return system


class TestBytecodeInEvents:
    def test_records_are_stamped_with_the_event_task(self):
        system = build_system("Term.redraw")
        trace = system.trace()
        reads = [op for op in trace if isinstance(op, PtrRead)]
        assert reads and all(op.task.startswith("ev") for op in reads)
        assert all(op.method == "Term.redraw" for op in reads)

    def test_method_frames_recorded(self):
        system = build_system("Term.redraw")
        trace = system.trace()
        entered = {op.method for op in trace if isinstance(op, MethodEnter)}
        assert {"Term.redraw", "Term.onPause"} <= entered

    def test_unguarded_bytecode_use_detected(self):
        system = build_system("Term.redraw")
        result = detect_use_free_races(system.trace())
        assert result.report_count() == 1
        key = result.reports[0].key
        assert key.use_method == "Term.redraw"
        assert key.free_method == "Term.onPause"
        assert key.field == "handler"

    def test_guarded_bytecode_use_filtered(self):
        """The compiled null-check emits the if-eqz record at pc 1 and
        the dereference at pc 2 — inside the safe region — so the
        if-guard check filters the race, exactly as on real Dalvik."""
        system = build_system("Term.onFocus")
        trace = system.trace()
        assert any(isinstance(op, Branch) for op in trace)
        result = detect_use_free_races(trace)
        assert result.report_count() == 0
        assert len(result.filtered_reports) == 1
        assert result.filtered_reports[0].witnesses[0].filtered_by == "if-guard"

    def test_bytecode_free_recognized(self):
        system = build_system("Term.redraw")
        trace = system.trace()
        frees = [op for op in trace if isinstance(op, PtrWrite) and op.is_free]
        assert len(frees) == 1
        assert frees[0].method == "Term.onPause"

    def test_interpreter_cost_charged_to_simulation(self):
        system = build_system("Term.redraw")
        assert system.total_cpu_time > 0
        interp = system.processes["app"].interpreter
        assert interp.executed > 0
