"""Tests for the evaluation pipeline: precision, performance, tables."""

import pytest

from repro.analysis import (
    AppEvaluation,
    SCALE_ENV_VAR,
    analysis_scaling,
    bench_scale,
    evaluate_run,
    format_scaling,
    format_slowdowns,
    format_table1,
    measure_slowdown,
    paper_table1_rows,
    reproduce_figure8,
    reproduce_table1,
)
from repro.apps import ConnectBotApp, MyTracksApp, VlcApp

SCALE = 0.03


@pytest.fixture(scope="module")
def mytracks_eval():
    run = MyTracksApp(scale=SCALE, seed=1).run()
    return evaluate_run(run)


class TestPrecision:
    def test_row_cells_derive_from_matched_reports(self, mytracks_eval):
        row = mytracks_eval.row()
        assert row.reported == 8
        assert row.true_races == row.a + row.b + row.c == 4
        assert row.false_positives == 4

    def test_precision_is_true_over_reported(self, mytracks_eval):
        assert mytracks_eval.precision == pytest.approx(4 / 8)

    def test_evaluate_requires_a_trace(self):
        run = MyTracksApp(scale=SCALE, seed=1).run(tracing=False)
        with pytest.raises(ValueError, match="no trace"):
            evaluate_run(run)

    def test_ground_truth_verdicts_attached_to_reports(self, mytracks_eval):
        assert all(r.verdict is not None for r in mytracks_eval.matched)

    def test_table_totals_sum_rows(self):
        table = reproduce_table1(apps=[MyTracksApp, ConnectBotApp], scale=SCALE, seed=1)
        totals = table.totals()
        assert totals.reported == 8 + 3
        assert totals.a == 1
        assert totals.b == 3 + 2

    def test_paper_rows_align_with_apps(self):
        rows = paper_table1_rows([MyTracksApp, ConnectBotApp])
        assert rows[0].reported == 8
        assert rows[1].reported == 3


class TestPerformance:
    def test_measure_slowdown_in_paper_envelope(self):
        result = measure_slowdown(VlcApp, scale=SCALE, seed=1)
        assert 1.0 < result.slowdown <= 6.0
        assert result.trace_records > 0

    def test_figure8_covers_requested_apps(self):
        results = reproduce_figure8(apps=[VlcApp], scale=SCALE, seed=1)
        assert [r.name for r in results] == ["vlc"]

    def test_analysis_scaling_points_ordered(self):
        points = analysis_scaling(VlcApp, scales=[SCALE, SCALE * 3], seed=1)
        assert points[0].events < points[1].events
        assert all(p.hb_seconds >= 0 for p in points)


class TestBenchScale:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert bench_scale(0.2) == 0.2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.7")
        assert bench_scale() == 0.7

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            bench_scale()

    def test_nonpositive_env_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "-1")
        with pytest.raises(ValueError):
            bench_scale()


class TestFormatting:
    def test_table1_format_contains_rows_and_totals(self):
        table = reproduce_table1(apps=[MyTracksApp], scale=SCALE, seed=1)
        text = format_table1(table, paper_table1_rows([MyTracksApp]))
        assert "mytracks" in text
        assert "(paper)" in text
        assert "Overall" in text
        assert "precision" in text

    def test_slowdown_format(self):
        results = reproduce_figure8(apps=[VlcApp], scale=SCALE, seed=1)
        text = format_slowdowns(results)
        assert "vlc" in text
        assert "x" in text

    def test_scaling_format(self):
        points = analysis_scaling(VlcApp, scales=[SCALE], seed=1)
        text = format_scaling(points)
        assert "Events" in text
