"""Tests for the context's pointer helpers, including static slots."""

import pytest

from repro.detect import detect_use_free_races
from repro.dvm.interpreter import DvmNullPointerError
from repro.runtime import AndroidSystem
from repro.trace import Branch, Deref, PtrRead, PtrWrite


def run_threads(*bodies, seed=1):
    system = AndroidSystem(seed=seed)
    app = system.process("app")
    for i, body in enumerate(bodies):
        app.thread(f"t{i}", body)
    system.run()
    return system, app


class TestInstanceHelpers:
    def test_get_field_emits_read_and_container_deref(self):
        system, app = run_threads(lambda ctx: None)
        system2 = AndroidSystem(seed=1)
        app2 = system2.process("app")
        holder = app2.heap.new("H")
        holder.fields["p"] = app2.heap.new("T")

        def body(ctx):
            value = ctx.get_field(holder, "p")
            assert value is holder.fields["p"]

        app2.thread("t", body)
        system2.run()
        trace = system2.trace()
        assert any(isinstance(op, PtrRead) for op in trace)
        derefs = [op for op in trace if isinstance(op, Deref)]
        assert derefs[0].object_id == holder.object_id

    def test_use_field_raises_simulated_npe_on_null(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        holder = app.heap.new("H")
        holder.fields["p"] = None

        def body(ctx):
            ctx.use_field(holder, "p")

        app.thread("t", body)
        system.run()
        # thread-level NPEs are recorded as violations
        assert len(system.violations) == 1

    def test_guarded_use_null_path_emits_no_branch(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        holder = app.heap.new("H")
        holder.fields["p"] = None

        def body(ctx):
            assert ctx.guarded_use(holder, "p") is None

        app.thread("t", body)
        system.run()
        trace = system.trace()
        assert not any(isinstance(op, Branch) for op in trace)
        assert not any(isinstance(op, Deref) and op.object_id != holder.object_id
                       for op in trace)

    def test_guarded_use_pc_layout_stable_on_both_paths(self):
        """The null path must consume the same pcs as the non-null
        path so static sites stay comparable across executions."""

        def trace_of(null_first):
            system = AndroidSystem(seed=1)
            app = system.process("app")
            holder = app.heap.new("H")
            target = app.heap.new("T")
            holder.fields["p"] = None if null_first else target

            def body(ctx):
                ctx.guarded_use(holder, "p")
                ctx.get_field(holder, "q")  # next site

            app.thread("t", body)
            system.run()
            reads = [op for op in system.trace() if isinstance(op, PtrRead)]
            return [op.pc for op in reads]

        # the pc of the *next* pointer read is identical either way
        assert trace_of(True)[-1] == trace_of(False)[-1]


class TestStaticHelpers:
    def _system_with_singleton(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        app.heap.put_static("Tracker", "instance", app.heap.new("Tracker"))
        return system, app

    def test_static_use_free_race_detected(self):
        system, app = self._system_with_singleton()
        main = app.looper("main")

        def use_event(ctx):
            ctx.use_static("Tracker", "instance")

        def free_event(ctx):
            ctx.put_static("Tracker", "instance", None)

        def poster(ctx):
            yield from ctx.sleep(5)
            ctx.post(main, use_event, label="useSingleton")

        app.thread("poster", poster)
        from repro.runtime import ExternalSource

        src = ExternalSource("user")
        src.at(40, main, free_event, "clearSingleton")
        src.attach(system, app)
        system.run()
        result = detect_use_free_races(system.trace())
        assert result.report_count() == 1
        assert result.reports[0].key.field == "instance"

    def test_guarded_static_use_filtered(self):
        system, app = self._system_with_singleton()
        main = app.looper("main")

        def use_event(ctx):
            ctx.guarded_use_static("Tracker", "instance")

        def free_event(ctx):
            ctx.put_static("Tracker", "instance", None)

        def poster(ctx):
            yield from ctx.sleep(5)
            ctx.post(main, use_event, label="useSingleton")

        app.thread("poster", poster)
        from repro.runtime import ExternalSource

        src = ExternalSource("user")
        src.at(40, main, free_event, "clearSingleton")
        src.attach(system, app)
        system.run()
        result = detect_use_free_races(system.trace())
        assert result.report_count() == 0
        assert len(result.filtered_reports) == 1

    def test_put_static_non_reference_rejected(self):
        from repro.runtime import SimulationError

        system, app = self._system_with_singleton()
        app.thread("t", lambda ctx: ctx.put_static("Tracker", "instance", 42))
        with pytest.raises(SimulationError, match="non-reference"):
            system.run()

    def test_static_free_recorded_without_container(self):
        system, app = self._system_with_singleton()
        app.thread("t", lambda ctx: ctx.put_static("Tracker", "instance", None))
        system.run()
        (write,) = [op for op in system.trace() if isinstance(op, PtrWrite)]
        assert write.container is None
        assert write.address == ("static", "Tracker", "instance")
