"""Differential testing: the prefix-mask + memo query path vs. the
historical bit-scan.

``fast_queries=False`` keeps the original per-query scan alive exactly
so these tests can demand bit-for-bit agreement on ``ordered``,
``concurrent``, ``concurrent_pairs``, and ``event_ordered`` — for
generated traces under the stock models and a set of rule ablations,
and for the full batched detector on a real workload.
"""

from collections import OrderedDict
from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.apps import MusicApp
from repro.detect import DetectorOptions, UseFreeDetector
from repro.hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    DEFAULT_MEMO_CAPACITY,
    NO_QUEUE_MODEL,
    build_happens_before,
    hb_stats,
)
from repro.testing import TraceBuilder

from tests.test_property_runtime_hb import program_specs, run_program

#: the stock models plus ablations that stress different rule subsets
MODELS = [
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    NO_QUEUE_MODEL,
    replace(CAFA_MODEL, atomicity=False),
    replace(CAFA_MODEL, listener=False, ipc=False),
    replace(CAFA_MODEL, external_input=False, fork_join=False),
    replace(CAFA_MODEL, queue_rule_2=False, queue_rule_4=False),
    replace(CONVENTIONAL_MODEL, lock_edges=False, signal_wait=False),
]


def assert_query_paths_agree(trace, config):
    fast = build_happens_before(trace, config, fast_queries=True)
    scan = build_happens_before(trace, config, fast_queries=False)
    n = len(trace)
    pairs = [(i, j) for i in range(n) for j in range(n)]
    for i, j in pairs:
        assert fast.ordered(i, j) == scan.ordered(i, j), (i, j, config)
        assert fast.concurrent(i, j) == scan.concurrent(i, j), (i, j, config)
    assert fast.concurrent_pairs(pairs) == scan.concurrent_pairs(pairs)
    events = trace.events()
    for e1 in events:
        for e2 in events:
            if e1 == e2:
                continue
            try:
                verdict = fast.event_ordered(e1, e2)
            except KeyError:
                with pytest.raises(KeyError):
                    scan.event_ordered(e1, e2)
                continue
            assert verdict == scan.event_ordered(e1, e2), (e1, e2, config)


@settings(max_examples=20, deadline=None)
@given(program_specs())
def test_fast_queries_match_scan_cafa_model(spec):
    trace = run_program(spec)
    if len(trace) > 120:  # keep the all-pairs sweep tractable
        return
    assert_query_paths_agree(trace, CAFA_MODEL)


@settings(max_examples=10, deadline=None)
@given(program_specs())
def test_fast_queries_match_scan_all_ablations(spec):
    trace = run_program(spec)
    if len(trace) > 80:
        return
    for config in MODELS:
        assert_query_paths_agree(trace, config)


class TestCuratedAgreement:
    """Traces where the queue rules and sendAtFront reordering bite."""

    def _fig4d(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S")
        b.event("C", looper="L")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("S"); b.send("S", "C"); b.end("S")
        b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
        b.begin("B"); b.end("B")
        b.begin("A"); b.end("A")
        return b.build()

    def test_fig4d_agreement_all_models(self):
        trace = self._fig4d()
        for config in MODELS:
            assert_query_paths_agree(trace, config)


class TestQueryProfile:
    """The fast path's observability contract."""

    def _two_event_trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A"); b.send("T", "B"); b.end("T")
        b.begin("A"); b.read("A", "x"); b.end("A")
        b.begin("B"); b.write("B", "x"); b.end("B")
        return b.build()

    def test_counters_attribute_queries(self):
        hb = build_happens_before(self._two_event_trace())
        prof = hb.query_profile
        assert prof.fast and prof.queries == 0
        hb.ordered(0, 1)
        assert prof.queries == 1
        assert prof.same_task == 1  # ops 0 and 1 are both in task T
        before = prof.memo_misses
        a = next(i for i, op in enumerate(hb._op_task) if op == "A")
        b = next(i for i, op in enumerate(hb._op_task) if op == "B")
        hb.ordered(a, b)
        hb.ordered(a, b)  # second call must be a memo hit
        assert prof.memo_misses == before + 1
        assert prof.memo_hits >= 1
        assert 0.0 < prof.memo_hit_rate <= 1.0

    def test_masks_materialize_lazily_and_are_counted(self):
        hb = build_happens_before(self._two_event_trace())
        prof = hb.query_profile
        assert prof.mask_tasks == 0 and prof.mask_bytes == 0
        a = next(i for i, op in enumerate(hb._op_task) if op == "A")
        b = next(i for i, op in enumerate(hb._op_task) if op == "B")
        hb.ordered(a, b)
        assert prof.mask_tasks >= 1
        assert prof.mask_bytes > 0

    def test_batched_pairs_counted_in_both_modes(self):
        trace = self._two_event_trace()
        for fast in (True, False):
            hb = build_happens_before(trace, fast_queries=fast)
            hb.concurrent_pairs([(0, 1), (1, 2), (2, 3)])
            assert hb.query_profile.batched_pairs == 3
            assert hb.query_profile.fast is fast

    def test_reset_query_memo_keeps_verdicts_stable(self):
        trace = self._two_event_trace()
        hb = build_happens_before(trace)
        n = len(trace)
        pairs = [(i, j) for i in range(n) for j in range(n)]
        first = hb.concurrent_pairs(pairs)
        hb.reset_query_memo()
        assert hb._memo == {} and hb._pair_memo == {}
        assert hb.concurrent_pairs(pairs) == first

    def test_stats_surface_the_query_profile(self):
        trace = self._two_event_trace()
        hb = build_happens_before(trace)
        hb.concurrent_pairs([(0, 1)])
        text = hb_stats(trace, hb).format()
        assert "query path [prefix-mask+memo]" in text
        assert "prefix masks:" in text
        scan = build_happens_before(trace, fast_queries=False)
        scan.ordered(0, 1)
        assert "query path [bit-scan (legacy)]" in hb_stats(trace, scan).format()


class TestBatchedDetectorRegression:
    """The batched detector must be invisible in its results."""

    @pytest.fixture(scope="class")
    def run(self):
        return MusicApp(scale=0.05, seed=1).run()

    def _fingerprint(self, result):
        return (
            [
                (str(r.key), r.race_class, [str(w) for w in r.witnesses])
                for r in result.reports
            ],
            [
                (str(r.key), [w.filtered_by for w in r.witnesses])
                for r in result.filtered_reports
            ],
            result.dynamic_candidates,
        )

    def test_reports_identical_under_both_query_paths(self, run):
        fast = UseFreeDetector(
            run.trace, options=DetectorOptions(fast_queries=True)
        ).detect()
        scan = UseFreeDetector(
            run.trace, options=DetectorOptions(fast_queries=False)
        ).detect()
        assert self._fingerprint(fast) == self._fingerprint(scan)

    def test_ablation_options_identical_under_both_query_paths(self, run):
        options = DetectorOptions(
            if_guard=False, intra_event_allocation=False, lockset_filter=False
        )
        fast = UseFreeDetector(
            run.trace, options=replace(options, fast_queries=True)
        ).detect()
        scan = UseFreeDetector(
            run.trace, options=replace(options, fast_queries=False)
        ).detect()
        assert self._fingerprint(fast) == self._fingerprint(scan)


class TestMemoBound:
    """The LRU bound on the query memo tables: capacity is enforced,
    evictions are observable, and verdicts never depend on it."""

    def _trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        events = [f"E{i}" for i in range(6)]
        for name in events:
            b.event(name, looper="L")
        b.begin("T")
        for name in events:
            b.send("T", name)
        b.end("T")
        for name in events:
            b.begin(name); b.read(name, "x"); b.end(name)
        return b.build()

    def _all_pairs(self, trace):
        n = len(trace)
        return [(i, j) for i in range(n) for j in range(n) if i != j]

    def test_default_capacity_is_recorded(self):
        hb = build_happens_before(self._trace())
        assert hb.query_profile.memo_capacity == DEFAULT_MEMO_CAPACITY
        assert hb.query_profile.memo_evictions == 0

    def test_zero_means_unbounded(self):
        trace = self._trace()
        hb = build_happens_before(trace, memo_capacity=0)
        hb.concurrent_pairs(self._all_pairs(trace))
        assert hb.query_profile.memo_capacity is None
        assert hb.query_profile.memo_evictions == 0
        assert not isinstance(hb._memo, OrderedDict)

    def test_capacity_bounds_both_tables_and_counts_evictions(self):
        trace = self._trace()
        capacity = 4
        hb = build_happens_before(trace, memo_capacity=capacity)
        pairs = self._all_pairs(trace)
        hb.concurrent_pairs(pairs)
        for i, j in pairs[:50]:
            hb.ordered(i, j)
        assert len(hb._memo) <= capacity
        assert len(hb._pair_memo) <= capacity
        assert hb.query_profile.memo_evictions > 0

    def test_lru_keeps_the_hot_entry(self):
        trace = self._trace()
        hb = build_happens_before(trace, memo_capacity=2)
        reads = [trace.ops_of(f"E{i}")[1] for i in range(6)]
        misses = hb.query_profile.memo_misses
        hot = (reads[0], reads[5])
        hb.ordered(*hot)  # miss; the memo now holds the hot answer
        for other in reads[1:5]:
            hb.ordered(reads[0], other)  # churn past the capacity ...
            hb.ordered(*hot)  # ... but re-touch the hot pair each time
        # one miss for the hot pair, one per churn pair, zero re-misses
        assert hb.query_profile.memo_misses == misses + 1 + 4

    def test_verdicts_identical_across_capacities(self):
        trace = self._trace()
        pairs = self._all_pairs(trace)
        reference = build_happens_before(trace, memo_capacity=0).concurrent_pairs(
            pairs
        )
        for capacity in (1, 3, 64):
            hb = build_happens_before(trace, memo_capacity=capacity)
            assert hb.concurrent_pairs(pairs) == reference

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="memo_capacity"):
            build_happens_before(self._trace(), memo_capacity=-1)

    def test_detector_options_thread_the_bound(self, tmp_path):
        trace = self._trace()
        unbounded = UseFreeDetector(
            trace, options=DetectorOptions(memo_capacity=0)
        )
        bounded = UseFreeDetector(
            trace, options=DetectorOptions(memo_capacity=2)
        )
        assert [str(r.key) for r in unbounded.detect().reports] == [
            str(r.key) for r in bounded.detect().reports
        ]
        assert bounded.hb.query_profile.memo_capacity == 2

    def test_stats_surface_the_bound(self):
        trace = self._trace()
        hb = build_happens_before(trace, memo_capacity=8)
        hb.concurrent_pairs(self._all_pairs(trace))
        text = hb_stats(trace, hb).format()
        assert "memo bound: 8 entries/table" in text
        unbounded = build_happens_before(trace, memo_capacity=0)
        unbounded.ordered(0, 1)
        assert "memo bound: unbounded" in hb_stats(trace, unbounded).format()
