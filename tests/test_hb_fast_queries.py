"""Differential testing: the prefix-mask + memo query path vs. the
historical bit-scan.

``fast_queries=False`` keeps the original per-query scan alive exactly
so these tests can demand bit-for-bit agreement on ``ordered``,
``concurrent``, ``concurrent_pairs``, and ``event_ordered`` — for
generated traces under the stock models and a set of rule ablations,
and for the full batched detector on a real workload.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.apps import MusicApp
from repro.detect import DetectorOptions, UseFreeDetector
from repro.hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    NO_QUEUE_MODEL,
    build_happens_before,
    hb_stats,
)
from repro.testing import TraceBuilder

from tests.test_property_runtime_hb import program_specs, run_program

#: the stock models plus ablations that stress different rule subsets
MODELS = [
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    NO_QUEUE_MODEL,
    replace(CAFA_MODEL, atomicity=False),
    replace(CAFA_MODEL, listener=False, ipc=False),
    replace(CAFA_MODEL, external_input=False, fork_join=False),
    replace(CAFA_MODEL, queue_rule_2=False, queue_rule_4=False),
    replace(CONVENTIONAL_MODEL, lock_edges=False, signal_wait=False),
]


def assert_query_paths_agree(trace, config):
    fast = build_happens_before(trace, config, fast_queries=True)
    scan = build_happens_before(trace, config, fast_queries=False)
    n = len(trace)
    pairs = [(i, j) for i in range(n) for j in range(n)]
    for i, j in pairs:
        assert fast.ordered(i, j) == scan.ordered(i, j), (i, j, config)
        assert fast.concurrent(i, j) == scan.concurrent(i, j), (i, j, config)
    assert fast.concurrent_pairs(pairs) == scan.concurrent_pairs(pairs)
    events = trace.events()
    for e1 in events:
        for e2 in events:
            if e1 == e2:
                continue
            try:
                verdict = fast.event_ordered(e1, e2)
            except KeyError:
                with pytest.raises(KeyError):
                    scan.event_ordered(e1, e2)
                continue
            assert verdict == scan.event_ordered(e1, e2), (e1, e2, config)


@settings(max_examples=20, deadline=None)
@given(program_specs())
def test_fast_queries_match_scan_cafa_model(spec):
    trace = run_program(spec)
    if len(trace) > 120:  # keep the all-pairs sweep tractable
        return
    assert_query_paths_agree(trace, CAFA_MODEL)


@settings(max_examples=10, deadline=None)
@given(program_specs())
def test_fast_queries_match_scan_all_ablations(spec):
    trace = run_program(spec)
    if len(trace) > 80:
        return
    for config in MODELS:
        assert_query_paths_agree(trace, config)


class TestCuratedAgreement:
    """Traces where the queue rules and sendAtFront reordering bite."""

    def _fig4d(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S")
        b.event("C", looper="L")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("S"); b.send("S", "C"); b.end("S")
        b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
        b.begin("B"); b.end("B")
        b.begin("A"); b.end("A")
        return b.build()

    def test_fig4d_agreement_all_models(self):
        trace = self._fig4d()
        for config in MODELS:
            assert_query_paths_agree(trace, config)


class TestQueryProfile:
    """The fast path's observability contract."""

    def _two_event_trace(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T"); b.send("T", "A"); b.send("T", "B"); b.end("T")
        b.begin("A"); b.read("A", "x"); b.end("A")
        b.begin("B"); b.write("B", "x"); b.end("B")
        return b.build()

    def test_counters_attribute_queries(self):
        hb = build_happens_before(self._two_event_trace())
        prof = hb.query_profile
        assert prof.fast and prof.queries == 0
        hb.ordered(0, 1)
        assert prof.queries == 1
        assert prof.same_task == 1  # ops 0 and 1 are both in task T
        before = prof.memo_misses
        a = next(i for i, op in enumerate(hb._op_task) if op == "A")
        b = next(i for i, op in enumerate(hb._op_task) if op == "B")
        hb.ordered(a, b)
        hb.ordered(a, b)  # second call must be a memo hit
        assert prof.memo_misses == before + 1
        assert prof.memo_hits >= 1
        assert 0.0 < prof.memo_hit_rate <= 1.0

    def test_masks_materialize_lazily_and_are_counted(self):
        hb = build_happens_before(self._two_event_trace())
        prof = hb.query_profile
        assert prof.mask_tasks == 0 and prof.mask_bytes == 0
        a = next(i for i, op in enumerate(hb._op_task) if op == "A")
        b = next(i for i, op in enumerate(hb._op_task) if op == "B")
        hb.ordered(a, b)
        assert prof.mask_tasks >= 1
        assert prof.mask_bytes > 0

    def test_batched_pairs_counted_in_both_modes(self):
        trace = self._two_event_trace()
        for fast in (True, False):
            hb = build_happens_before(trace, fast_queries=fast)
            hb.concurrent_pairs([(0, 1), (1, 2), (2, 3)])
            assert hb.query_profile.batched_pairs == 3
            assert hb.query_profile.fast is fast

    def test_reset_query_memo_keeps_verdicts_stable(self):
        trace = self._two_event_trace()
        hb = build_happens_before(trace)
        n = len(trace)
        pairs = [(i, j) for i in range(n) for j in range(n)]
        first = hb.concurrent_pairs(pairs)
        hb.reset_query_memo()
        assert hb._memo == {} and hb._pair_memo == {}
        assert hb.concurrent_pairs(pairs) == first

    def test_stats_surface_the_query_profile(self):
        trace = self._two_event_trace()
        hb = build_happens_before(trace)
        hb.concurrent_pairs([(0, 1)])
        text = hb_stats(trace, hb).format()
        assert "query path [prefix-mask+memo]" in text
        assert "prefix masks:" in text
        scan = build_happens_before(trace, fast_queries=False)
        scan.ordered(0, 1)
        assert "query path [bit-scan (legacy)]" in hb_stats(trace, scan).format()


class TestBatchedDetectorRegression:
    """The batched detector must be invisible in its results."""

    @pytest.fixture(scope="class")
    def run(self):
        return MusicApp(scale=0.05, seed=1).run()

    def _fingerprint(self, result):
        return (
            [
                (str(r.key), r.race_class, [str(w) for w in r.witnesses])
                for r in result.reports
            ],
            [
                (str(r.key), [w.filtered_by for w in r.witnesses])
                for r in result.filtered_reports
            ],
            result.dynamic_candidates,
        )

    def test_reports_identical_under_both_query_paths(self, run):
        fast = UseFreeDetector(
            run.trace, options=DetectorOptions(fast_queries=True)
        ).detect()
        scan = UseFreeDetector(
            run.trace, options=DetectorOptions(fast_queries=False)
        ).detect()
        assert self._fingerprint(fast) == self._fingerprint(scan)

    def test_ablation_options_identical_under_both_query_paths(self, run):
        options = DetectorOptions(
            if_guard=False, intra_event_allocation=False, lockset_filter=False
        )
        fast = UseFreeDetector(
            run.trace, options=replace(options, fast_queries=True)
        ).detect()
        scan = UseFreeDetector(
            run.trace, options=replace(options, fast_queries=False)
        ).detect()
        assert self._fingerprint(fast) == self._fingerprint(scan)
