"""Runtime tests: external input sources and the tracer cost model."""

import pytest

from repro.runtime import AndroidSystem, ExternalSource, TimeModel, ms
from repro.trace import Send


class TestExternalSource:
    def _run(self, source_builder, seed=1):
        system = AndroidSystem(seed=seed)
        app = system.process("app")
        main = app.looper("main")
        source_builder(system, app, main)
        system.run(max_ms=5000)
        return system

    def test_injections_delivered_in_time_order(self):
        times = []

        def build(system, app, main):
            src = ExternalSource("touch")
            src.at(30, main, lambda ctx: times.append(("b", ctx.now_ms)), "b")
            src.at(10, main, lambda ctx: times.append(("a", ctx.now_ms)), "a")
            src.attach(system, app)

        self._run(build)
        assert [t[0] for t in times] == ["a", "b"]
        assert times[0][1] >= 10 and times[1][1] >= 30

    def test_events_marked_external_with_sequence(self):
        def build(system, app, main):
            src = ExternalSource("touch")
            src.at(10, main, lambda ctx: None, "a")
            src.at(20, main, lambda ctx: None, "b")
            src.attach(system, app)

        system = self._run(build)
        trace = system.trace()
        external = trace.external_events()
        assert len(external) == 2
        seqs = [trace.info(e).external_seq for e in external]
        assert seqs == sorted(seqs)

    def test_external_seq_global_across_sources(self):
        def build(system, app, main):
            s1 = ExternalSource("touch")
            s1.at(10, main, lambda ctx: None, "t1")
            s1.at(30, main, lambda ctx: None, "t2")
            s1.attach(system, app)
            s2 = ExternalSource("sensor")
            s2.at(20, main, lambda ctx: None, "s1")
            s2.attach(system, app)

        system = self._run(build)
        trace = system.trace()
        labels = [trace.info(e).label for e in trace.external_events()]
        assert labels == ["t1", "s1", "t2"]

    def test_listener_injection_performs_listener(self):
        performed = []

        def build(system, app, main):
            def register(ctx):
                ctx.register_listener("onClick", lambda c: performed.append(True))

            app.thread("setup", register)
            src = ExternalSource("touch")
            src.at_listener(50, main, "onClick")
            src.attach(system, app)

        self._run(build)
        assert performed == [True]

    def test_internal_posts_are_not_external(self):
        def build(system, app, main):
            app.thread("t", lambda ctx: ctx.post(main, lambda c: None, label="e"))

        system = self._run(build)
        assert system.trace().external_events() == []


class TestCostModel:
    def _workload(self, tracing, compute=0):
        system = AndroidSystem(seed=1, tracing=tracing)
        app = system.process("app")

        def body(ctx):
            for _ in range(10):
                ctx.read("x")
                ctx.write("x", 1)
                if compute:
                    ctx.compute(compute)

        app.thread("t", body)
        system.run()
        return system

    def test_tracing_costs_more_cpu(self):
        traced = self._workload(tracing=True)
        untraced = self._workload(tracing=False)
        assert traced.total_cpu_time > untraced.total_cpu_time

    def test_slowdown_bounded_by_cost_ratio(self):
        model = TimeModel()
        traced = self._workload(tracing=True)
        untraced = self._workload(tracing=False)
        ratio = traced.total_cpu_time / untraced.total_cpu_time
        upper = (model.base_op_cost + model.trace_record_cost) / model.base_op_cost
        assert ratio <= upper + 1e-9

    def test_compute_dilutes_the_slowdown(self):
        lean_ratio = (
            self._workload(True).total_cpu_time
            / self._workload(False).total_cpu_time
        )
        heavy_ratio = (
            self._workload(True, compute=50).total_cpu_time
            / self._workload(False, compute=50).total_cpu_time
        )
        assert heavy_ratio < lean_ratio

    def test_disabled_tracer_collects_nothing(self):
        system = self._workload(tracing=False)
        with pytest.raises(RuntimeError, match="disabled"):
            system.trace()

    def test_ms_conversion(self):
        assert ms(1) == 1000
        assert ms(2.5) == 2500

    def test_cpu_time_attributed_per_thread(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        app.thread("busy", lambda ctx: ctx.compute(500))
        app.thread("idle", lambda ctx: None)
        system.run()
        assert system.cpu_time["app/busy"] > system.cpu_time["app/idle"]
