"""The corpus triage pipeline: per-item damaged reporting, salvage
passthrough, serial/parallel parity, the JSON schema, the budget-curve
sweep, and the ``repro triage`` command."""

import json

import pytest

from repro.analysis import budget_curve, triage_corpus
from repro.apps import ALL_APPS
from repro.cli import main
from repro.detect import UseFreeDetector
from repro.runtime import AndroidSystem
from repro.trace import load_trace_file, save_trace_file

RACY_APP = ALL_APPS[0]
BUDGET = 1 << 20  # exhaustive for every fixture trace


def write_racy(path, scale=0.02, seed=0):
    trace = RACY_APP(scale=scale, seed=seed).run().trace
    save_trace_file(trace, path)
    return trace


def write_clean(path):
    system = AndroidSystem(seed=1)
    app = system.process("clean")
    app.thread("t", lambda ctx: ctx.write("x", 1))
    system.run()
    save_trace_file(system.trace(), path)
    return system.trace()


def write_truncated(path, tmp_path):
    whole = tmp_path / "whole.bin"
    write_racy(whole)
    data = whole.read_bytes()
    path.write_bytes(data[: len(data) * 2 // 3])


@pytest.fixture()
def corpus(tmp_path):
    racy = tmp_path / "racy.bin"
    clean = tmp_path / "clean.bin"
    broken = tmp_path / "broken.bin"
    write_racy(racy)
    write_clean(clean)
    write_truncated(broken, tmp_path)
    missing = tmp_path / "missing.bin"
    return [str(racy), str(clean), str(broken), str(missing)]


class TestTriageCorpus:
    def test_statuses_are_per_item(self, corpus):
        report = triage_corpus(corpus, budget=BUDGET)
        assert [i.status for i in report.items] == [
            "flagged",
            "clean",
            "damaged",
            "damaged",
        ]
        assert [i.name for i in report.items] == corpus
        for item in report.damaged:
            assert item.error

    def test_flagged_races_match_full_detection(self, corpus):
        report = triage_corpus(corpus, budget=BUDGET)
        flagged = report.items[0]
        trace = load_trace_file(corpus[0])
        full = UseFreeDetector(trace).detect()
        assert flagged.races == len(full.reports)
        assert flagged.reports == [str(r) for r in full.reports]
        assert flagged.sample is not None
        assert flagged.sample.exhaustive

    def test_clean_trace_skips_escalation(self, corpus):
        report = triage_corpus(corpus, budget=BUDGET)
        clean = report.items[1]
        assert clean.races == 0
        assert clean.reports == []
        assert clean.full_seconds == 0.0

    def test_salvage_triages_the_valid_prefix(self, corpus):
        report = triage_corpus(corpus, budget=BUDGET, salvage=True)
        salvaged = report.items[2]
        assert salvaged.status in ("flagged", "clean")
        assert salvaged.salvaged
        assert salvaged.error
        assert salvaged.ops > 0
        # The missing file still cannot be salvaged.
        assert report.items[3].status == "damaged"

    def test_parallel_matches_serial(self, corpus):
        def fidelity(report):
            return [
                (i.name, i.status, i.races, i.suspects, i.budget_spent,
                 i.salvaged, i.reports)
                for i in report.items
            ]

        serial = triage_corpus(corpus, budget=BUDGET, salvage=True)
        fanned = triage_corpus(corpus, budget=BUDGET, salvage=True, jobs=2)
        assert fidelity(serial) == fidelity(fanned)

    def test_json_document_shape(self, corpus):
        report = triage_corpus(corpus, budget=7, seed=3)
        doc = json.loads(report.to_json())
        assert doc["schema"] == "repro-triage/1"
        assert doc["budget"] == 7
        assert doc["seed"] == 3
        assert doc["counts"]["traces"] == 4
        assert doc["counts"]["damaged"] == 2
        assert len(doc["items"]) == 4
        for item in doc["items"]:
            assert {"name", "status", "budget_spent", "races"} <= set(item)

    def test_legacy_store_matches_columnar(self, corpus):
        columnar = triage_corpus(corpus[:2], budget=BUDGET)
        legacy = triage_corpus(corpus[:2], budget=BUDGET, columnar=False)
        assert [(i.status, i.races) for i in columnar.items] == [
            (i.status, i.races) for i in legacy.items
        ]


class TestBudgetCurve:
    def test_fidelity_columns_are_deterministic(self):
        apps = ALL_APPS[:2]
        kwargs = dict(apps=apps, budgets=[1, 64], scale=0.02)
        first = budget_curve(**kwargs)
        second = budget_curve(**kwargs, jobs=2)

        def fidelity(curve):
            return [
                (p.budget, p.racy_apps, p.flagged_apps, p.flagged_racy,
                 p.recall, p.trace_precision, p.pairs_sampled, p.suspects,
                 p.confirmed, p.pair_precision)
                for p in curve.points
            ]

        assert fidelity(first) == fidelity(second)

    def test_recall_is_one_at_ample_budget(self):
        curve = budget_curve(budgets=[1 << 20], scale=0.02)
        assert len(curve.apps) == len(ALL_APPS)
        point = curve.points[0]
        assert point.racy_apps == len(ALL_APPS)
        assert point.recall == 1.0
        assert point.trace_precision == 1.0

    def test_rejects_empty_budget_list(self):
        with pytest.raises(ValueError):
            budget_curve(budgets=[])


class TestTriageCli:
    def test_reports_and_exit_codes(self, corpus, capsys, tmp_path):
        out_json = tmp_path / "triage.json"
        rc = main(
            ["triage", *corpus, "--budget", "1048576",
             "--json", str(out_json)]
        )
        assert rc == 1  # damaged members without --salvage
        out = capsys.readouterr().out
        assert "2 damaged" in out
        assert "flagged" in out
        doc = json.loads(out_json.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro-triage/1"

    def test_salvage_clears_the_failure_exit(self, corpus, capsys):
        assert main(["triage", *corpus[:3], "--salvage"]) == 0
        assert "[salvaged]" in capsys.readouterr().out

    def test_requires_traces_or_curve(self, capsys):
        assert main(["triage"]) == 2
        assert "provide trace files" in capsys.readouterr().err

    def test_curve_sweep(self, capsys):
        rc = main(
            ["triage", "--curve", "--budgets", "4", "--scale", "0.02",
             "--json", "-"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget sweep over 10 apps" in out
        payload = out[out.index("{"):]
        doc = json.loads(payload)
        assert doc["points"][0]["budget"] == 4
