"""Tests for the mini-DVM disassembler."""

import pytest

from repro.dvm import (
    MethodBuilder,
    disassemble,
    disassemble_instruction,
)
from repro.dvm.instructions import (
    BinOp,
    Const,
    ConstNull,
    Goto,
    IfEq,
    IfEqz,
    IfLt,
    IfNez,
    IGet,
    IGetObject,
    Invoke,
    IPut,
    IPutObject,
    Move,
    NewInstance,
    Nop,
    Return,
    SGet,
    SGetObject,
    SPut,
    SPutObject,
)


@pytest.mark.parametrize(
    "instr,expected",
    [
        (Const(0, 7), "const v0, 7"),
        (ConstNull(1), "const v1, null"),
        (Move(0, 1), "move v0, v1"),
        (NewInstance(0, "Track"), "new-instance v0, Track"),
        (IGet(0, 1, "count"), "iget v0, v1, count"),
        (IPut(0, 1, "count"), "iput v0, v1, count"),
        (IGetObject(0, 1, "p"), "iget-object v0, v1, p"),
        (IPutObject(0, 1, "p"), "iput-object v0, v1, p"),
        (SGet(0, "C", "f"), "sget v0, C.f"),
        (SPut(0, "C", "f"), "sput v0, C.f"),
        (SGetObject(0, "C", "f"), "sget-object v0, C.f"),
        (SPutObject(0, "C", "f"), "sput-object v0, C.f"),
        (Return(None), "return-void"),
        (Return(2), "return v2"),
        (Goto(4), "goto :4"),
        (IfEqz(0, 9), "if-eqz v0, :9"),
        (IfNez(0, 9), "if-nez v0, :9"),
        (IfEq(0, 1, 9), "if-eq v0, v1, :9"),
        (IfLt(0, 1, 9), "if-lt v0, v1, :9"),
        (BinOp("+", 2, 0, 1), "add-int v2, v0, v1"),
        (Nop(), "nop"),
    ],
)
def test_instruction_mnemonics(instr, expected):
    assert disassemble_instruction(instr) == expected


class TestInvokeForms:
    def test_virtual_invoke_shows_receiver(self):
        text = disassemble_instruction(Invoke(method="run", receiver=1))
        assert text == "invoke-virtual {v1} run"

    def test_static_invoke_with_args_and_result(self):
        text = disassemble_instruction(Invoke(method="f", args=(0, 1), dst=2))
        assert text == "invoke-static {v0, v1} f -> v2"


class TestMethodListing:
    def test_listing_has_header_pcs_and_catch_annotation(self):
        b = MethodBuilder("ToDoWidget.updateNote", params=1)
        b.iget_object(1, 0, "db")
        b.invoke("update", receiver=1)
        b.label("done")
        b.return_void()
        b.catch_npe("done")
        text = disassemble(b.build())
        assert ".method ToDoWidget.updateNote (params=1)" in text
        assert "0: iget-object v1, v0, db" in text
        assert "catch-NPE handler" in text
        assert text.endswith(".end method")

    def test_every_builder_instruction_disassembles(self):
        b = MethodBuilder("all", params=2)
        b.const(2, 1).const_null(3).move(4, 2).new_instance(5, "X")
        b.iget(6, 5, "f").iput(6, 5, "f")
        b.iget_object(7, 5, "p").iput_object(3, 5, "p")
        b.sget(6, "C", "s").sput(6, "C", "s")
        b.sget_object(7, "C", "sp").sput_object(3, "C", "sp")
        b.add(6, 2, 2).sub(6, 6, 2).binop("*", 6, 6, 2)
        b.if_lt(6, 2, "end").if_eqz(3, "end").if_nez(5, "end").if_eq(5, 5, "end")
        b.goto("end").nop()
        b.label("end")
        b.return_void()
        text = disassemble(b.build())
        assert len(text.splitlines()) == 2 + len(b.build().code)
