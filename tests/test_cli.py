"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestApps:
    def test_lists_ten_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("connectbot", "mytracks", "music"):
            assert name in out


class TestRecordDetectWitness:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "mytracks.jsonl"
        assert main(["record", "mytracks", "-o", str(path), "--scale", "0.02"]) == 0
        capsys.readouterr()
        return path

    def test_record_writes_a_loadable_trace(self, trace_path):
        from repro.trace import load_trace_file

        trace = load_trace_file(trace_path)
        assert len(trace) > 0
        trace.validate()

    def test_detect_reports_the_mytracks_races(self, trace_path, capsys):
        assert main(["detect", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "use-free races reported: 8" in out
        assert "providerUtils" in out

    def test_detect_low_level_flag(self, trace_path, capsys):
        assert main(["detect", str(trace_path), "--low-level"]) == 0
        out = capsys.readouterr().out
        assert "low-level baseline" in out

    def test_witness_prints_schedules(self, trace_path, capsys):
        assert main(["witness", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "the FREE" in out
        assert "alternate schedule" in out

    def test_stats_prints_rule_attribution(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "edges by rule" in out
        assert "program-order" in out

    def test_witness_on_race_free_trace(self, tmp_path, capsys):
        from repro.runtime import AndroidSystem
        from repro.trace import save_trace_file

        system = AndroidSystem(seed=1)
        app = system.process("clean")
        app.thread("t", lambda ctx: ctx.write("x", 1))
        system.run()
        path = tmp_path / "clean.jsonl"
        save_trace_file(system.trace(), path)
        assert main(["witness", str(path)]) == 0
        assert "no use-free races" in capsys.readouterr().out


class TestEvaluate:
    def test_evaluate_prints_table1(self, capsys):
        assert main(["evaluate", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Overall" in out
        assert "115" in out

    def test_record_unknown_app_fails(self, tmp_path):
        with pytest.raises(KeyError):
            main(["record", "ghost", "-o", str(tmp_path / "x.jsonl")])

    def test_evaluate_jobs_matches_serial(self, capsys):
        assert main(["evaluate", "--scale", "0.02"]) == 0
        serial = capsys.readouterr().out
        assert main(["evaluate", "--scale", "0.02", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "many"])
    def test_evaluate_rejects_bad_jobs(self, bad, capsys):
        with pytest.raises(SystemExit):
            main(["evaluate", "--scale", "0.02", "--jobs", bad])
        err = capsys.readouterr().err
        assert "--jobs" in err

    def test_slowdown_accepts_jobs(self, capsys):
        assert main(["slowdown", "--scale", "0.01", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out.lower()


class TestDot:
    def test_dot_export(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main(["record", "vlc", "-o", str(trace_path), "--scale", "0.02"]) == 0
        capsys.readouterr()
        assert main(["dot", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph happens_before")
        assert "send" in out


class TestExplore:
    def test_explore_reports_stability(self, capsys):
        assert main(["explore", "vlc", "--seeds", "2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "stability 100%" in out
        assert "stable:" in out
