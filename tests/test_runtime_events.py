"""Runtime tests: event posting, delays, sendAtFront, listeners."""

import pytest

from repro.runtime import AndroidSystem, SimulationError
from repro.trace import (
    Begin,
    OpKind,
    Perform,
    Register,
    Send,
    SendAtFront,
    TaskKind,
)


def make_app():
    system = AndroidSystem(seed=1)
    app = system.process("app")
    main = app.looper("main")
    return system, app, main


class TestPosting:
    def test_posted_event_runs_and_has_begin_end(self):
        system, app, main = make_app()
        ran = []

        def handler(ctx):
            ran.append(True)

        app.thread("t", lambda ctx: ctx.post(main, handler, label="e"))
        system.run()
        assert ran == [True]
        trace = system.trace()
        events = trace.events()
        assert len(events) == 1
        info = trace.info(events[0])
        assert info.task_kind is TaskKind.EVENT
        assert info.looper == main

    def test_send_record_carries_event_queue_and_delay(self):
        system, app, main = make_app()
        app.thread("t", lambda ctx: ctx.post(main, lambda c: None, delay_ms=7, label="e"))
        system.run()
        send = next(op for op in system.trace() if isinstance(op, Send))
        assert send.delay == 7
        assert send.queue.endswith("main.queue")
        assert send.event.endswith(":e")

    def test_event_args_are_passed(self):
        system, app, main = make_app()
        got = []

        def handler(ctx, a, b):
            got.append((a, b))

        app.thread("t", lambda ctx: ctx.post(main, handler, args=(1, 2)))
        system.run()
        assert got == [(1, 2)]

    def test_events_run_in_fifo_order(self):
        system, app, main = make_app()
        order = []

        def make(name):
            return lambda ctx: order.append(name)

        def t(ctx):
            for name in "abc":
                ctx.post(main, make(name), label=name)

        app.thread("t", t)
        system.run()
        assert order == ["a", "b", "c"]

    def test_delay_defers_execution(self):
        system, app, main = make_app()
        times = {}

        def quick(ctx):
            times["quick"] = ctx.now_ms

        def slow(ctx):
            times["slow"] = ctx.now_ms

        def t(ctx):
            ctx.post(main, slow, delay_ms=50, label="slow")
            ctx.post(main, quick, label="quick")

        app.thread("t", t)
        system.run()
        assert times["quick"] < 50 <= times["slow"]

    def test_post_at_front_overtakes(self):
        system, app, main = make_app()
        order = []

        def make(name):
            return lambda ctx: order.append(name)

        def seed_event(ctx):
            # From within an event, so the looper is busy while we
            # enqueue (Figure 4d's setup).
            ctx.post(main, make("a"), label="a")
            ctx.post_at_front(main, make("front"), label="front")

        app.thread("t", lambda ctx: ctx.post(main, seed_event, label="seed"))
        system.run()
        assert order == ["front", "a"]
        assert any(isinstance(op, SendAtFront) for op in system.trace())

    def test_nested_event_posting(self):
        system, app, main = make_app()
        depth = []

        def handler(ctx, n):
            depth.append(n)
            if n < 3:
                ctx.post(main, handler, args=(n + 1,), label=f"gen{n + 1}")

        app.thread("t", lambda ctx: ctx.post(main, handler, args=(1,), label="gen1"))
        system.run()
        assert depth == [1, 2, 3]

    def test_generator_handler_can_block(self):
        system, app, main = make_app()
        done = []

        def handler(ctx):
            yield from ctx.sleep(10)
            done.append(ctx.now_ms)

        app.thread("t", lambda ctx: ctx.post(main, handler, label="e"))
        system.run()
        assert done and done[0] >= 10

    def test_event_atomicity_on_looper(self):
        """While one event blocks mid-handler, no other event of the
        same looper may run (Section 2.1)."""
        system, app, main = make_app()
        order = []

        def blocking(ctx):
            order.append("block-start")
            yield from ctx.sleep(20)
            order.append("block-end")

        def other(ctx):
            order.append("other")

        def t(ctx):
            ctx.post(main, blocking, label="blocking")
            ctx.post(main, other, label="other")

        app.thread("t", t)
        system.run()
        assert order == ["block-start", "block-end", "other"]

    def test_post_to_unknown_looper_raises(self):
        system, app, main = make_app()
        app.thread("t", lambda ctx: ctx.post("nowhere", lambda c: None))
        with pytest.raises(SimulationError, match="not a looper"):
            system.run()

    def test_trace_validates_after_arbitrary_run(self):
        system, app, main = make_app()

        def t(ctx):
            for i in range(5):
                ctx.post(main, lambda c: c.write("x", 1), delay_ms=i, label=f"e{i}")

        app.thread("t", t)
        system.run()
        system.trace().validate()


class TestListeners:
    def test_fire_listener_performs_registered_handler(self):
        system, app, main = make_app()
        performed = []

        def on_click(ctx):
            performed.append(True)

        def t(ctx):
            ctx.register_listener("click", on_click)
            ctx.fire_listener(main, "click")

        app.thread("t", t)
        system.run()
        assert performed == [True]
        trace = system.trace()
        assert any(isinstance(op, Register) for op in trace)
        assert any(isinstance(op, Perform) for op in trace)

    def test_untraced_register_emits_no_record(self):
        system, app, main = make_app()

        def t(ctx):
            ctx.register_listener("click", lambda c: None, traced=False)
            ctx.fire_listener(main, "click")

        app.thread("t", t)
        system.run()
        trace = system.trace()
        assert not any(isinstance(op, Register) for op in trace)
        assert any(isinstance(op, Perform) for op in trace)

    def test_unregistered_listener_event_is_a_noop(self):
        system, app, main = make_app()
        app.thread("t", lambda ctx: ctx.fire_listener(main, "ghost"))
        system.run()  # must not raise
        assert any(isinstance(op, Perform) for op in system.trace())

    def test_register_record_precedes_perform_record(self):
        system, app, main = make_app()

        def t(ctx):
            ctx.register_listener("l", lambda c: None)
            ctx.fire_listener(main, "l")

        app.thread("t", t)
        system.run()
        trace = system.trace()
        reg = next(i for i, op in enumerate(trace) if isinstance(op, Register))
        perf = next(i for i, op in enumerate(trace) if isinstance(op, Perform))
        assert reg < perf


class TestLooperLifecycle:
    def test_looper_id_is_stable(self):
        system = AndroidSystem()
        app = system.process("app")
        assert app.looper("main") == app.looper("main")

    def test_multiple_loopers_per_process(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")
        worker = app.looper("worker")
        seen = []
        app.thread(
            "t",
            lambda ctx: (
                ctx.post(main, lambda c: seen.append("main"), label="m"),
                ctx.post(worker, lambda c: seen.append("worker"), label="w"),
            ),
        )
        system.run()
        assert sorted(seen) == ["main", "worker"]

    def test_events_on_different_loopers_may_interleave(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        l1, l2 = app.looper("l1"), app.looper("l2")
        starts = []

        def blocker(ctx, name):
            starts.append(name)
            yield from ctx.sleep(20)

        def t(ctx):
            ctx.post(l1, blocker, args=("a",), label="a")
            ctx.post(l2, blocker, args=("b",), label="b")

        app.thread("t", t)
        system.run()
        assert sorted(starts) == ["a", "b"]
        system.trace().validate()  # atomicity per looper still holds
