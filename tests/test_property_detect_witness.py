"""Property-based tests of the detector + witness on random programs
that really contain pointer uses, frees, allocations, and guards."""

import random as pyrandom

from hypothesis import given, settings, strategies as st

from repro.analysis.witness import build_witness
from repro.detect import DetectorOptions, UseFreeDetector
from repro.runtime import AndroidSystem, ExternalSource

action_st = st.sampled_from(
    ["use", "guarded_use", "free", "alloc", "post_use", "post_free", "sleep"]
)


@st.composite
def pointer_program_specs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=3))
    threads = [
        draw(st.lists(action_st, min_size=1, max_size=5)) for _ in range(n_threads)
    ]
    n_fields = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return threads, n_fields, seed


def run_pointer_program(spec):
    threads, n_fields, seed = spec
    system = AndroidSystem(seed=seed)
    app = system.process("app")
    main = app.looper("main")
    rng = pyrandom.Random(seed)
    holder = app.heap.new("Holder")
    fields = [f"f{i}" for i in range(n_fields)]
    for field in fields:
        holder.fields[field] = app.heap.new("Target")

    def field_for(i):
        return fields[i % n_fields]

    def make_use(field):
        def handler(ctx):
            ctx.use_field(holder, field)

        return handler

    def make_free(field):
        def handler(ctx):
            ctx.put_field(holder, field, None)

        return handler

    counter = [0]

    def make_body(actions):
        def body(ctx):
            for action in actions:
                counter[0] += 1
                field = field_for(counter[0])
                if action == "use":
                    try:
                        ctx.use_field(holder, field)
                    except Exception:
                        pass  # simulated NPE: the use did not execute
                elif action == "guarded_use":
                    ctx.guarded_use(holder, field)
                elif action == "free":
                    ctx.put_field(holder, field, None)
                elif action == "alloc":
                    ctx.put_field(holder, field, ctx.new_object("Fresh"))
                elif action == "post_use":
                    ctx.post(main, make_use(field), label=f"useEv{counter[0]}")
                elif action == "post_free":
                    ctx.post(main, make_free(field), label=f"freeEv{counter[0]}")
                elif action == "sleep":
                    yield from ctx.sleep(rng.randrange(1, 4))

        return body

    for t, actions in enumerate(threads):
        app.thread(f"t{t}", make_body(actions))
    source = ExternalSource("life")
    source.at(50, main, make_free(fields[0]), "lifecycleFree")
    source.attach(system, app)
    system.run(max_ms=2000)
    return system.trace()


@settings(max_examples=30, deadline=None)
@given(pointer_program_specs())
def test_reported_races_have_concurrent_endpoints(spec):
    trace = run_pointer_program(spec)
    detector = UseFreeDetector(trace)
    result = detector.detect()
    for report in result.reports:
        witness = report.witness()
        assert detector.hb.concurrent(witness.use.read_index, witness.free.index)


@settings(max_examples=30, deadline=None)
@given(pointer_program_specs())
def test_every_report_admits_a_violation_witness(spec):
    trace = run_pointer_program(spec)
    detector = UseFreeDetector(trace)
    result = detector.detect()
    for report in result.reports:
        witness = build_witness(trace, detector.hb, report)
        assert witness.free_position < witness.use_position
        assert sorted(witness.order) == list(range(len(trace)))


@settings(max_examples=30, deadline=None)
@given(pointer_program_specs())
def test_filtered_and_reported_are_disjoint(spec):
    trace = run_pointer_program(spec)
    result = UseFreeDetector(trace).detect()
    reported = {r.key for r in result.reports}
    filtered = {r.key for r in result.filtered_reports}
    assert not (reported & filtered)


@settings(max_examples=30, deadline=None)
@given(pointer_program_specs())
def test_heuristics_only_remove_reports(spec):
    trace = run_pointer_program(spec)
    full = UseFreeDetector(trace).detect()
    raw = UseFreeDetector(
        trace, DetectorOptions(if_guard=False, intra_event_allocation=False)
    ).detect()
    assert {r.key for r in full.reports} <= {r.key for r in raw.reports}


@settings(max_examples=20, deadline=None)
@given(pointer_program_specs())
def test_detection_is_deterministic(spec):
    keys1 = {r.key for r in UseFreeDetector(run_pointer_program(spec)).detect().reports}
    keys2 = {r.key for r in UseFreeDetector(run_pointer_program(spec)).detect().reports}
    assert keys1 == keys2
