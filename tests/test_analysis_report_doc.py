"""Tests for the Markdown report generator."""

import pytest

from repro.analysis.report_doc import generate_report
from repro.apps import ConnectBotApp, MyTracksApp


@pytest.fixture(scope="module")
def report_text():
    return generate_report(
        scale=0.02,
        seed=1,
        apps=[ConnectBotApp, MyTracksApp],
        include_slowdowns=False,
    )


class TestReportDocument:
    def test_has_table_and_totals(self, report_text):
        assert "# CAFA evaluation report" in report_text
        assert "connectbot" in report_text
        assert "11 races reported" in report_text  # 3 + 8

    def test_per_app_sections_with_sessions(self, report_text):
        assert "### mytracks" in report_text
        assert "Record a short track" in report_text

    def test_races_annotated_with_class_and_verdict(self, report_text):
        assert "class (b)" in report_text
        assert "ground truth: harmful" in report_text
        assert "ground truth: fp-" in report_text

    def test_witness_lines_present(self, report_text):
        assert "witness schedule runs" in report_text

    def test_filtered_patterns_listed(self, report_text):
        assert "filtered as commutative" in report_text
        assert "if-guard" in report_text

    def test_low_level_baseline_section(self, report_text):
        assert "Low-level baseline" in report_text
        assert "conventional conflicting-access definition" in report_text

    def test_slowdowns_optional(self):
        with_slowdowns = generate_report(
            scale=0.02, seed=1, apps=[ConnectBotApp], include_slowdowns=True
        )
        assert "Tracing slowdown" in with_slowdowns

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert (
            main(["report", "-o", str(out), "--scale", "0.02", "--no-slowdowns"]) == 0
        )
        assert "CAFA evaluation report" in out.read_text()
