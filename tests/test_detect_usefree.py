"""Tests for the use-free race detector (Section 4)."""

import pytest

from repro.detect import (
    DetectorOptions,
    RaceClass,
    UseFreeDetector,
    detect_use_free_races,
)
from repro.testing import TraceBuilder
from repro.trace import BranchKind

ADDR = ("obj", 1, "ptr")


def two_event_trace(with_guard=False, with_lock=False, same_task=False,
                    ordered=False):
    """Use in event A, free in event B, on the same looper."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T1")
    b.thread("T2")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.begin("T1"); b.send("T1", "A"); b.end("T1")
    if ordered:
        # B sent from within A (send rule + atomicity orders A before B)
        pass
    else:
        b.begin("T2"); b.send("T2", "B"); b.end("T2")
    b.begin("A")
    if with_lock:
        b.acquire("A", "lk")
    b.ptr_read("A", ADDR, object_id=9, method="onUse", pc=0)
    if with_guard:
        b.branch("A", BranchKind.IF_EQZ, pc=1, target=3, object_id=9, method="onUse")
        b.deref("A", object_id=9, method="onUse", pc=2)
    else:
        b.deref("A", object_id=9, method="onUse", pc=1)
    if with_lock:
        b.release("A", "lk")
    if ordered:
        b.send("A", "B")
    b.end("A")
    b.begin("B")
    if with_lock:
        b.acquire("B", "lk")
    b.ptr_write("B", ADDR, value=None, container=1, method="onFree", pc=0)
    if with_lock:
        b.release("B", "lk")
    b.end("B")
    return b.build()


class TestDetection:
    def test_concurrent_use_free_is_reported(self):
        result = detect_use_free_races(two_event_trace())
        assert result.report_count() == 1
        report = result.reports[0]
        assert report.key.use_method == "onUse"
        assert report.key.free_method == "onFree"
        assert report.key.field == "ptr"

    def test_ordered_pair_is_not_reported(self):
        result = detect_use_free_races(two_event_trace(ordered=True))
        assert result.report_count() == 0
        assert result.filtered_reports == []  # not even a candidate

    def test_same_task_pair_is_never_a_race(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.deref("t", object_id=9, method="m", pc=1)
        b.ptr_write("t", ADDR, value=None, method="m", pc=2)
        b.end("t")
        result = detect_use_free_races(b.build())
        assert result.report_count() == 0

    def test_guarded_use_filtered_by_if_guard(self):
        result = detect_use_free_races(two_event_trace(with_guard=True))
        assert result.report_count() == 0
        assert len(result.filtered_reports) == 1
        assert result.filtered_reports[0].witnesses[0].filtered_by == "if-guard"

    def test_if_guard_can_be_disabled(self):
        result = detect_use_free_races(
            two_event_trace(with_guard=True), DetectorOptions(if_guard=False)
        )
        assert result.report_count() == 1

    def test_common_lock_suppresses_the_pair(self):
        result = detect_use_free_races(two_event_trace(with_lock=True))
        assert result.report_count() == 0
        assert result.filtered_reports == []  # lockset rejects it outright

    def test_lockset_filter_can_be_disabled(self):
        result = detect_use_free_races(
            two_event_trace(with_lock=True), DetectorOptions(lockset_filter=False)
        )
        assert result.report_count() == 1

    def test_heuristics_do_not_apply_across_threads(self):
        """A guarded use still races a free in a regular thread: the
        free can interleave between the null check and the dereference."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.thread("F")
        b.event("A", looper="L")
        b.begin("T"); b.send("T", "A"); b.end("T")
        b.begin("A")
        b.ptr_read("A", ADDR, object_id=9, method="onUse", pc=0)
        b.branch("A", BranchKind.IF_EQZ, pc=1, target=3, object_id=9, method="onUse")
        b.deref("A", object_id=9, method="onUse", pc=2)
        b.end("A")
        b.begin("F")
        b.ptr_write("F", ADDR, value=None, container=1, method="freeThread", pc=0)
        b.end("F")
        result = detect_use_free_races(b.build())
        assert result.report_count() == 1

    def test_dynamic_witnesses_deduplicate_into_one_report(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        for name in ("A1", "A2", "B1"):
            b.event(name, looper="L")
        b.begin("T1"); b.send("T1", "A1"); b.send("T1", "A2", delay=5); b.end("T1")
        b.begin("T2"); b.send("T2", "B1"); b.end("T2")
        for use_event in ("A1", "A2"):
            b.begin(use_event)
            b.ptr_read(use_event, ADDR, object_id=9, method="onUse", pc=0)
            b.deref(use_event, object_id=9, method="onUse", pc=1)
            b.end(use_event)
        b.begin("B1")
        b.ptr_write("B1", ADDR, value=None, method="onFree", pc=0)
        b.end("B1")
        result = detect_use_free_races(b.build())
        assert result.report_count() == 1
        assert result.reports[0].dynamic_count == 2


class TestClassification:
    def test_same_looper_events_classified_intra_thread(self):
        result = detect_use_free_races(two_event_trace())
        assert result.reports[0].race_class is RaceClass.INTRA_THREAD

    def test_unsynchronized_thread_pair_classified_conventional(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.thread("U")
        b.event("A", looper="L")
        b.begin("T"); b.send("T", "A"); b.end("T")
        b.begin("U")
        b.ptr_read("U", ADDR, object_id=9, method="worker", pc=0)
        b.deref("U", object_id=9, method="worker", pc=1)
        b.end("U")
        b.begin("A")
        b.ptr_write("A", ADDR, value=None, method="onFree", pc=0)
        b.end("A")
        result = detect_use_free_races(b.build())
        assert result.reports[0].race_class is RaceClass.CONVENTIONAL

    def test_thread_ordered_only_conventionally_classified_inter_thread(self):
        """Use in an earlier event; free in a thread woken by a later
        event of the same looper — column (b)."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("P")
        b.thread("Q")
        b.thread("F")
        b.event("E_use", looper="L")
        b.event("E_trig", looper="L")
        b.begin("P"); b.send("P", "E_use"); b.end("P")
        b.begin("Q"); b.send("Q", "E_trig"); b.end("Q")
        b.begin("F")
        b.begin("E_use")
        b.ptr_read("E_use", ADDR, object_id=9, method="onUse", pc=0)
        b.deref("E_use", object_id=9, method="onUse", pc=1)
        b.end("E_use")
        ticket = b.next_ticket()
        b.begin("E_trig")
        b.notify("E_trig", "mon", ticket=ticket)
        b.end("E_trig")
        b.wait("F", "mon", ticket=ticket)
        b.ptr_write("F", ADDR, value=None, method="freer", pc=0)
        b.end("F")
        result = detect_use_free_races(b.build())
        (report,) = result.reports
        assert report.race_class is RaceClass.INTER_THREAD


class TestDetectorPlumbing:
    def test_hb_is_computed_lazily_and_cached(self):
        detector = UseFreeDetector(two_event_trace())
        assert detector.hb is detector.hb

    def test_result_find_by_field(self):
        result = detect_use_free_races(two_event_trace())
        assert len(result.find("ptr")) == 1
        assert result.find("other") == []

    def test_dynamic_candidates_counted(self):
        result = detect_use_free_races(two_event_trace())
        assert result.dynamic_candidates == 1
