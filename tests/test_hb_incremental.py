"""The incremental reachability index vs. rebuild-from-scratch.

``KeyGraph(incremental=True)`` maintains its transitive closure across
``add_node``/``add_edge`` once computed; ``incremental=False`` is the
historical invalidate-and-rebuild behaviour.  The two must agree on
every query and produce identical reach bitsets under any interleaving
of construction and queries — hypothesis drives randomized scripts,
and the app traces exercise the full builder both ways.
"""

import random

from hypothesis import given, settings, strategies as st
import pytest

from repro.analysis import bench_scale
from repro.hb import HBCycleError, KeyGraph, build_happens_before
from repro.hb.reference import ReferenceHappensBefore

#: scale for the whole-app differentials (REPRO_BENCH_SCALE overrides)
SCALE = bench_scale(default=0.02)


@st.composite
def graph_scripts(draw):
    """A random interleaving of add_node / add_edge / reaches steps.

    Edges always point from a lower to a higher node id, so the graph
    stays acyclic by construction.
    """
    initial = draw(st.integers(min_value=2, max_value=5))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["edge", "query", "node"]),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=60,
        )
    )
    return initial, steps


def replay(script):
    """Run one script on an incremental and a legacy graph in lockstep."""
    initial, steps = script
    inc = KeyGraph(incremental=True)
    legacy = KeyGraph(incremental=False)
    count = 0
    for _ in range(initial):
        inc.add_node(count)
        legacy.add_node(count)
        count += 1
    for kind, x, y in steps:
        if kind == "node":
            inc.add_node(count)
            legacy.add_node(count)
            count += 1
        elif kind == "edge":
            a, b = x % count, y % count
            if a == b:
                continue
            u, v = min(a, b), max(a, b)
            assert inc.add_edge(u, v, "r") == legacy.add_edge(u, v, "r")
        else:  # query — forces closure at an arbitrary point
            a, b = x % count, y % count
            assert inc.reaches(a, b) == legacy.reaches(a, b), (a, b)
    return inc, legacy


@settings(max_examples=200, deadline=None)
@given(graph_scripts())
def test_incremental_closure_matches_rebuild(script):
    inc, legacy = replay(script)
    assert inc.reach_vector() == legacy.reach_vector()
    assert inc.edge_count == legacy.edge_count


@settings(max_examples=100, deadline=None)
@given(graph_scripts())
def test_incremental_computes_at_most_one_full_closure(script):
    inc, legacy = replay(script)
    assert inc.closure_recomputations <= 1
    assert legacy.bits_propagated == 0


class TestIncrementalMechanics:
    def closed_chain(self, n=4):
        g = KeyGraph()
        nodes = [g.add_node(i) for i in range(n)]
        for u, v in zip(nodes, nodes[1:]):
            g.add_edge(u, v, "po")
        g.close()
        return g, nodes

    def test_edge_on_closed_graph_updates_in_place(self):
        g, nodes = self.closed_chain()
        before = g.closure_recomputations
        extra = g.add_node(99)
        g.add_edge(nodes[-1], extra, "x")
        assert g.reaches(nodes[0], extra)
        assert g.closure_recomputations == before
        assert g.bits_propagated > 0

    def test_implied_edge_propagates_nothing(self):
        g, nodes = self.closed_chain()
        spent = g.bits_propagated
        g.add_edge(nodes[0], nodes[2], "shortcut")
        assert g.bits_propagated == spent

    def test_back_edge_on_closed_graph_raises_immediately(self):
        g, nodes = self.closed_chain()
        with pytest.raises(HBCycleError) as excinfo:
            g.add_edge(nodes[3], nodes[0], "back")
        assert len(excinfo.value.cycle) >= 2

    def test_self_loop_on_closed_graph_raises_immediately(self):
        g, nodes = self.closed_chain()
        with pytest.raises(HBCycleError):
            g.add_edge(nodes[1], nodes[1], "self")

    def test_drain_dirty_reports_changed_nodes_once(self):
        g, nodes = self.closed_chain()
        assert g.drain_dirty() == set(range(g.node_count))  # initial closure
        assert g.drain_dirty() == set()
        g.add_edge(g.add_node(50), nodes[0], "pre")
        dirty = g.drain_dirty()
        assert dirty  # the new source node gained reach bits
        assert g.drain_dirty() == set()

    def test_close_is_idempotent(self):
        g, nodes = self.closed_chain()
        g.close()
        g.close()
        assert g.closure_recomputations == 1


def _sample_pairs(n, k, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(k)]


class TestBuilderDifferential:
    """The incremental builder vs. the legacy builder vs. the oracle."""

    APPS = None  # filled lazily to keep import time down

    @classmethod
    def apps(cls):
        if cls.APPS is None:
            from repro.apps import ALL_APPS

            cls.APPS = ALL_APPS
        return cls.APPS

    @pytest.mark.parametrize(
        "app_name", "connectbot mytracks zxing todolist browser firefox "
        "vlc fbreader camera music".split()
    )
    def test_incremental_build_is_bit_identical(self, app_name):
        app_cls = next(a for a in self.apps() if a.name == app_name)
        run = app_cls(scale=SCALE, seed=0).run()
        fast = build_happens_before(run.trace)
        slow = build_happens_before(run.trace, incremental=False)
        assert set(fast.graph.edges()) == set(slow.graph.edges())
        assert fast.graph.reach_vector() == slow.graph.reach_vector()
        assert fast.iterations == slow.iterations
        assert fast.derived_edges == slow.derived_edges
        for a, b in _sample_pairs(len(run.trace), 500):
            assert fast.ordered(a, b) == slow.ordered(a, b), (a, b)

    @pytest.mark.parametrize("app_name", ["mytracks", "browser", "camera"])
    def test_incremental_build_matches_reference_oracle(self, app_name):
        app_cls = next(a for a in self.apps() if a.name == app_name)
        run = app_cls(scale=0.01, seed=0).run()
        fast = build_happens_before(run.trace)
        oracle = ReferenceHappensBefore(run.trace)
        for a, b in _sample_pairs(len(run.trace), 1000, seed=7):
            assert fast.ordered(a, b) == oracle.ordered(a, b), (
                a,
                b,
                run.trace[a],
                run.trace[b],
            )

    def test_incremental_build_closes_once_despite_rounds(self):
        app_cls = next(a for a in self.apps() if a.name == "mytracks")
        run = app_cls(scale=0.05, seed=0).run()
        hb = build_happens_before(run.trace)
        assert hb.iterations >= 2  # the fixpoint does real work here
        assert hb.graph.closure_recomputations == 1
        legacy = build_happens_before(run.trace, incremental=False)
        assert legacy.graph.closure_recomputations > hb.graph.closure_recomputations
