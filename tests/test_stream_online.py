"""Online ≡ offline differential: replaying every stock app's trace
record-by-record through :class:`~repro.stream.StreamAnalyzer` must
reproduce the batch pipeline's race reports byte-for-byte — with epoch
GC enabled and disabled."""

import pytest

from repro.analysis import soak_trace
from repro.apps import ALL_APPS, make_app

SCALE = 0.02
SEED = 1
APP_NAMES = [app.name for app in ALL_APPS]

_TRACES = {}


def app_trace(name):
    if name not in _TRACES:
        _TRACES[name] = make_app(name, scale=SCALE, seed=SEED).run().trace
    return _TRACES[name]


@pytest.mark.parametrize("name", APP_NAMES)
def test_online_matches_offline_with_gc(name):
    result = soak_trace(app_trace(name), name=name, gc=True)
    assert result.online == result.offline, result.format()
    assert result.profile.ops_ingested == len(app_trace(name))
    # A complete session quiesces at its final END, retiring the
    # (single) epoch; GC must not change the verdict.
    assert result.profile.epochs_retired >= 1


@pytest.mark.parametrize("name", APP_NAMES)
def test_online_matches_offline_without_gc(name):
    result = soak_trace(app_trace(name), name=name, gc=False)
    assert result.online == result.offline, result.format()
    assert result.profile.epochs_retired == 0


def test_soak_profile_counters_are_sane():
    result = soak_trace(app_trace("connectbot"), name="connectbot")
    profile = result.profile
    assert profile.records_ingested >= profile.ops_ingested > 0
    assert profile.polls > 0
    assert profile.peak_closure_bytes >= profile.closure_bytes >= 0
    assert profile.reports_emitted == len(result.online)
    # format() renders every counter for the CLI.
    rendered = profile.format()
    assert "records ingested" in rendered
    assert "peak closure bytes" in rendered
