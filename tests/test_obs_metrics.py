"""Tests for the metrics core: instruments, snapshots, merging,
Prometheus rendering, and the profile adapters (repro.obs.metrics)."""

import pickle

import pytest

from repro.hb.builder import BuildProfile
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    profile_snapshot,
    render_prometheus,
)
from repro.stream import StreamProfile


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        data = hist.data()
        assert data.counts == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert data.count == 3
        assert data.sum == pytest.approx(5.55)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.1))

    def test_null_instrument_absorbs_everything(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(3)
        NULL_INSTRUMENT.observe(0.5)


class TestHistogramQuantile:
    def test_interpolates_within_the_bucket(self):
        data = HistogramData(bounds=[0.01, 0.1], counts=[10, 0, 0],
                             sum=0.05, count=10)
        # All samples in [0, 0.01]: the median interpolates to 0.005.
        assert data.quantile(0.5) == pytest.approx(0.005)

    def test_empty_histogram_is_zero(self):
        data = HistogramData(bounds=[1.0], counts=[0, 0])
        assert data.quantile(0.99) == 0.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        data = HistogramData(bounds=[1.0], counts=[0, 5], sum=50.0, count=5)
        assert data.quantile(0.5) == 1.0

    def test_rejects_out_of_range(self):
        data = HistogramData(bounds=[1.0], counts=[1, 0], count=1)
        with pytest.raises(ValueError):
            data.quantile(1.5)


class TestRegistry:
    def test_disabled_registry_hands_out_nulls_and_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_INSTRUMENT
        assert registry.gauge("g") is NULL_INSTRUMENT
        assert registry.histogram("h") is NULL_INSTRUMENT
        registry.register_profile("p", StreamProfile)
        assert len(registry) == 0
        snap = registry.snapshot()
        assert not snap.counters and not snap.gauges
        assert not snap.histograms and not snap.families

    def test_same_name_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert (
            registry.gauge("g", labels={"shard": "0"})
            is registry.gauge("g", labels={"shard": "0"})
        )
        assert registry.gauge("g") is not registry.gauge("g", labels={"shard": "0"})

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_reflects_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits", help="hits").inc(3)
        registry.gauge("depth", labels={"shard": "1"}).set(7)
        registry.histogram("lat").observe(0.002)
        snap = registry.snapshot()
        assert snap.counters["hits"] == 3
        assert snap.gauges['depth{shard="1"}'] == 7
        assert snap.histograms["lat"].count == 1
        assert snap.families["hits"] == ("counter", "hits")

    def test_register_profile_probes_at_snapshot_time(self):
        registry = MetricsRegistry()
        profile = StreamProfile(ops_ingested=5, closure_bytes=100)
        registry.register_profile("repro_stream", lambda: profile)
        profile.ops_ingested = 9  # the probe reads the live object
        snap = registry.snapshot()
        assert snap.counters["repro_stream_ops_ingested"] == 9
        # closure_bytes is a point-in-time quantity -> gauge
        assert snap.gauges["repro_stream_closure_bytes"] == 100


class TestProfileAdaptation:
    def test_stream_profile_fields_split_counter_vs_gauge(self):
        snap = MetricsSnapshot()
        profile = StreamProfile(
            ops_ingested=10, peak_closure_bytes=50, closure_bytes=40,
            retired_addresses=3,
        )
        profile_snapshot(snap, "s", profile)
        assert snap.counters["s_ops_ingested"] == 10
        for gauge_field in ("closure_bytes", "peak_closure_bytes",
                            "retired_addresses"):
            assert f"s_{gauge_field}" in snap.gauges

    def test_build_profile_skips_non_numeric_fields(self):
        snap = MetricsSnapshot()
        profile_snapshot(snap, "b", BuildProfile(scan_seconds=0.5))
        assert snap.counters["b_scan_seconds"] == 0.5
        # edges_per_round is a list, dense_bits a bool: neither exports
        names = set(snap.counters) | set(snap.gauges)
        assert not any("edges_per_round" in n for n in names)
        assert not any("dense_bits" in n for n in names)


class TestSnapshots:
    def test_snapshots_pickle(self):
        snap = MetricsSnapshot()
        snap.counter("c", 1.0, help="h")
        snap.histogram("lat", HistogramData(bounds=[1.0], counts=[1, 0],
                                            sum=0.5, count=1))
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == snap.counters
        assert clone.histograms["lat"].counts == [1, 0]

    def test_as_dict_has_stable_schema_and_quantiles(self):
        snap = MetricsSnapshot()
        snap.counter("c", 2.0)
        hist = Histogram()
        hist.observe(0.003)
        snap.histogram("lat", hist.data())
        doc = snap.as_dict()
        assert doc["schema"] == "repro-metrics/1"
        assert doc["counters"] == {"c": 2.0}
        assert {"p50", "p95", "p99"} <= set(doc["histograms"]["lat"])

    def test_roundtrip_through_dict(self):
        snap = MetricsSnapshot()
        snap.gauge("g", 4.0)
        snap.histogram("h", HistogramData(bounds=[1.0], counts=[2, 1],
                                          sum=3.0, count=3))
        clone = MetricsSnapshot.from_dict(snap.as_dict())
        assert clone.gauges == snap.gauges
        assert clone.histograms["h"].counts == [2, 1]


class TestMerge:
    def test_counters_and_gauges_sum(self):
        a, b = MetricsSnapshot(), MetricsSnapshot()
        a.counter("c", 1.0)
        b.counter("c", 2.0)
        a.gauge("g", 5.0, labels={"shard": "0"})
        b.gauge("g", 7.0, labels={"shard": "1"})
        merged = merge_snapshots([a, b])
        assert merged.counters["c"] == 3.0
        assert merged.gauges['g{shard="0"}'] == 5.0
        assert merged.gauges['g{shard="1"}'] == 7.0

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsSnapshot(), MetricsSnapshot()
        for snap, value in ((a, 0.0001), (b, 9.0)):
            hist = Histogram()
            hist.observe(value)
            snap.histogram("lat", hist.data())
        merged = merge_snapshots([a, b])
        assert merged.histograms["lat"].count == 2
        assert merged.histograms["lat"].sum == pytest.approx(9.0001)

    def test_mismatched_buckets_are_an_error(self):
        a, b = MetricsSnapshot(), MetricsSnapshot()
        a.histogram("h", HistogramData(bounds=[1.0], counts=[0, 0]))
        b.histogram("h", HistogramData(bounds=[2.0], counts=[0, 0]))
        with pytest.raises(ValueError, match="mismatched buckets"):
            merge_snapshots([a, b])

    def test_empty_merge_is_identity(self):
        assert merge_snapshots([]).as_dict()["counters"] == {}


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        snap = MetricsSnapshot()
        snap.counter("repro_frames_total", 42.0, help="frames")
        snap.gauge("repro_depth", 3.0, labels={"shard": "0"})
        text = render_prometheus(snap)
        assert "# HELP repro_frames_total frames" in text
        assert "# TYPE repro_frames_total counter" in text
        assert "repro_frames_total 42" in text
        assert 'repro_depth{shard="0"} 3' in text

    def test_histogram_renders_cumulative_buckets(self):
        snap = MetricsSnapshot()
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap.histogram("lat", hist.data(), help="latency")
        text = render_prometheus(snap)
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_labeled_histogram_keeps_labels_before_le(self):
        snap = MetricsSnapshot()
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        snap.histogram("lat", hist.data(), labels={"shard": "2"})
        text = render_prometheus(snap)
        assert 'lat_bucket{shard="2",le="1"} 1' in text
        assert 'lat_sum{shard="2"}' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsSnapshot()) == ""

    def test_default_buckets_cover_sub_ms_to_ten_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0
