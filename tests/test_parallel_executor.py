"""The shared parallel-executor layer (``repro.parallel``): batch
fan-out determinism and diagnostics, consistent hashing, and the
long-running worker machinery the daemon shards run on."""

import os

import pytest

from repro.parallel import (
    FanOutProfile,
    ShardRing,
    Worker,
    WorkerCrash,
    WorkerPool,
    default_jobs,
    fan_out,
    fan_out_profiled,
    pool_size,
    validate_jobs,
)


class TestValidateJobs:
    @pytest.mark.parametrize("jobs", [1, 2, 64])
    def test_accepts_positive_ints(self, jobs):
        validate_jobs(jobs)

    @pytest.mark.parametrize("jobs", [0, -1, -9])
    def test_rejects_nonpositive(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            validate_jobs(jobs)

    @pytest.mark.parametrize("jobs", [1.5, "2", None, True])
    def test_rejects_non_integers(self, jobs):
        with pytest.raises(ValueError, match="positive integer"):
            validate_jobs(jobs)

    def test_default_jobs_is_a_positive_int(self):
        jobs = default_jobs()
        assert isinstance(jobs, int) and jobs >= 1

    def test_pool_size_never_exceeds_items(self):
        assert pool_size(8, items=3) == 3
        assert pool_size(2, items=10) == 2
        assert pool_size(4, items=0) == 1


def _double(n):
    return n * 2


def _slow_identity(n):
    # finish order deliberately differs from submit order
    import time

    time.sleep(0.05 if n == 0 else 0.0)
    return n


def _boom(n):
    if n == 3:
        raise ValueError(f"boom on {n}")
    return n


def _exit_hard(n):
    if n == 1:
        os._exit(137)
    return n


class TestFanOut:
    def test_results_in_item_order(self):
        items = list(range(6))
        assert fan_out(_slow_identity, items, (), 3, "t") == items

    def test_single_pickled_call_shape(self):
        assert fan_out(_double, [1, 2, 3], (), 2, "t") == [2, 4, 6]

    def test_failure_names_the_item_with_custom_describe(self):
        with pytest.raises(
            RuntimeError, match="t worker for item 3 failed"
        ) as ei:
            fan_out(
                _boom,
                list(range(5)),
                (),
                2,
                "t",
                describe=lambda n: f"item {n}",
            )
        assert isinstance(ei.value.__cause__, ValueError)

    def test_process_death_names_the_item(self):
        with pytest.raises(
            RuntimeError, match="t worker process for item 1 died"
        ) as ei:
            fan_out(
                _exit_hard, [0, 1], (), 2, "t", describe=lambda n: f"item {n}"
            )
        assert "jobs=1" in str(ei.value)

    def test_profiled_run_accounts_every_item(self):
        results, profile = fan_out_profiled(
            _double, [5, 6, 7], (), 2, "t", describe=str
        )
        assert results == [10, 12, 14]
        assert isinstance(profile, FanOutProfile)
        assert [i.label for i in profile.items] == ["5", "6", "7"]
        assert all(i.pid > 0 and i.seconds >= 0 for i in profile.items)
        assert set(profile.by_worker()) == {i.pid for i in profile.items}
        assert profile.format().startswith("fan-out 't': 3 items")


class TestShardRing:
    def test_single_shard_takes_everything(self):
        ring = ShardRing(1)
        assert {ring.shard_of(f"s{i}") for i in range(50)} == {0}

    def test_assignment_is_stable_across_instances(self):
        keys = [f"session-{i}" for i in range(200)]
        a = ShardRing(4)
        b = ShardRing(4)
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_every_shard_gets_work(self):
        ring = ShardRing(4)
        assigned = ring.assign(f"session-{i}" for i in range(400))
        counts = [0, 0, 0, 0]
        for shard in assigned.values():
            counts[shard] += 1
        assert all(count > 0 for count in counts)
        # the ring should spread sessions, not pile them on one shard
        assert max(counts) < 400 * 0.6

    def test_growing_the_ring_moves_only_some_sessions(self):
        keys = [f"session-{i}" for i in range(300)]
        before = ShardRing(3).assign(keys)
        after = ShardRing(4).assign(keys)
        moved = sum(1 for k in keys if before[k] != after[k])
        assert 0 < moved < len(keys) * 0.6  # consistent, not rehash-all

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardRing(0)
        with pytest.raises(ValueError):
            ShardRing(2, vnodes=0)


# -- long-running worker fixtures (module level: the child imports us) --


def _acc_init(name):
    return {"name": name, "values": []}


def _acc_handle(state, msg):
    if msg == "explode":
        raise ValueError("handler exploded")
    state["values"].append(msg)


def _acc_finish(state):
    return list(state["values"])


class TestWorker:
    def test_messages_survive_until_drain(self):
        worker = Worker("acc-0", _acc_init, _acc_handle, _acc_finish)
        for i in range(10):
            worker.send(i)
        result, profile = worker.drain()
        assert result == list(range(10))
        assert profile.messages == 10
        assert profile.name == "acc-0"
        assert profile.pid != os.getpid()

    def test_handler_crash_is_named_and_carries_traceback(self):
        worker = Worker("acc-1", _acc_init, _acc_handle, _acc_finish)
        worker.send("explode")
        with pytest.raises(WorkerCrash, match="'acc-1'") as ei:
            worker.drain()
        assert ei.value.worker == "acc-1"
        assert "handler exploded" in (ei.value.detail or "")

    def test_send_after_drain_is_refused(self):
        worker = Worker("acc-2", _acc_init, _acc_handle, _acc_finish)
        worker.request_drain()
        with pytest.raises(RuntimeError, match="already drained"):
            worker.send(1)
        worker.collect()

    def test_queue_size_validated(self):
        with pytest.raises(ValueError, match="queue_size"):
            Worker("acc-3", _acc_init, _acc_handle, _acc_finish, queue_size=0)


class TestWorkerPool:
    def test_routes_by_index_and_drains_in_worker_order(self):
        pool = WorkerPool(2, _acc_init, _acc_handle, _acc_finish, name="acc")
        pool.send(0, "a")
        pool.send(1, "b")
        pool.send(0, "c")
        outcomes = pool.drain()
        assert [result for result, _profile in outcomes] == [["a", "c"], ["b"]]
        assert [p.name for _r, p in outcomes] == ["acc-0", "acc-1"]

    def test_count_validated(self):
        with pytest.raises(ValueError, match="count"):
            WorkerPool(0, _acc_init, _acc_handle, _acc_finish)
