"""The v2 positional trace format: property-based round-trips across
both versions and backends, version negotiation, the streaming kind
table, gzip transparency, and malformed-record diagnostics."""

import gzip
import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    Trace,
    TraceError,
    dumps_trace,
    dumps_trace_bytes,
    load_trace,
    load_trace_file,
    loads_trace,
    save_trace_file,
)
from tests.test_property_structures import operation_st, task_st
from tests.test_trace_serialization import sample_trace

#: traces whose op list is arbitrary (task-table invariants are not
#: exercised here, so the ops need not validate)
ops_st = st.lists(operation_st, max_size=30)


def bare_trace(ops, columnar=True):
    trace = Trace(columnar=columnar)
    trace.extend(ops)
    return trace


class TestPropertyRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(ops_st, st.sampled_from(SUPPORTED_VERSIONS), st.booleans(), st.booleans())
    def test_any_ops_round_trip_both_versions_both_backends(
        self, ops, version, write_columnar, read_columnar
    ):
        trace = bare_trace(ops, columnar=write_columnar)
        blob = dumps_trace_bytes(trace, version=version)
        back = loads_trace(blob, columnar=read_columnar)
        assert list(back.ops) == ops
        assert back.columnar is read_columnar

    @settings(max_examples=100, deadline=None)
    @given(ops_st)
    def test_v1_and_v2_decode_identically(self, ops):
        trace = bare_trace(ops)
        v1 = loads_trace(dumps_trace(trace, version=1))
        v2 = loads_trace(dumps_trace(trace, version=2))
        assert list(v1.ops) == list(v2.ops) == ops

    @settings(max_examples=100, deadline=None)
    @given(ops_st)
    def test_v2_reserialization_is_stable(self, ops):
        # dump -> load -> dump must be byte-identical: the wire interning
        # order depends only on the op sequence.
        first = dumps_trace(bare_trace(ops))
        second = dumps_trace(loads_trace(first))
        assert first == second


class TestVersionNegotiation:
    def test_default_version_is_v2(self):
        header = json.loads(dumps_trace(sample_trace()).splitlines()[0])
        assert FORMAT_VERSION == 2
        assert header["version"] == 2
        assert "kinds" in header

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_expect_version_accepts_matching_stream(self, version):
        trace = sample_trace()
        blob = dumps_trace_bytes(trace, version=version)
        back = loads_trace(blob, expect_version=version)
        assert back.ops == trace.ops

    def test_expect_version_rejects_mismatch(self):
        text = dumps_trace(sample_trace(), version=1)
        with pytest.raises(TraceError, match="expected trace version 2"):
            loads_trace(text, expect_version=2)

    def test_unwritable_version_rejected(self):
        with pytest.raises(TraceError, match="cannot write"):
            dumps_trace(sample_trace(), version=99)

    def test_v3_rejected_on_text_stream(self):
        # v3 is binary: the text entry point refuses rather than
        # emitting mojibake into a str stream.
        with pytest.raises(TraceError, match="cannot write trace version 3"):
            dumps_trace(sample_trace(), version=3)

    def test_header_kind_table_drives_decoding(self):
        # Reorder the kind table: positional wire codes re-map through
        # the header, so the stream still decodes identically.
        trace = sample_trace()
        lines = dumps_trace(trace).splitlines()
        header = json.loads(lines[0])
        order = list(range(len(header["kinds"])))
        order.reverse()
        remap = {old: new for new, old in enumerate(order)}
        header["kinds"] = [header["kinds"][i] for i in order]
        out = [json.dumps(header)]
        for line in lines[1:]:
            record = json.loads(line)
            if isinstance(record, list) and record[0] == "o":
                record[1] = remap[record[1]]
            out.append(json.dumps(record))
        back = loads_trace("\n".join(out) + "\n")
        assert back.ops == trace.ops

    def test_unknown_kind_in_header_rejected(self):
        lines = dumps_trace(sample_trace()).splitlines()
        header = json.loads(lines[0])
        header["kinds"][0] = "warp-drive"
        text = "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        with pytest.raises(TraceError, match="unknown operation kind 'warp-drive'"):
            loads_trace(text)

    def test_missing_kind_table_rejected(self):
        lines = dumps_trace(sample_trace()).splitlines()
        header = json.loads(lines[0])
        del header["kinds"]
        text = "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        with pytest.raises(TraceError, match="kind table"):
            loads_trace(text)


class TestMalformedRecords:
    def _v2_stream(self, *records):
        header = {
            "format": "cafa-trace",
            "version": 2,
            "kinds": ["begin", "rd"],
        }
        lines = [json.dumps(header)] + [json.dumps(r) for r in records]
        return "\n".join(lines) + "\n"

    def test_undeclared_kind_code_rejected(self):
        text = self._v2_stream(["s", "T"], ["o", 5, 1, 0])
        with pytest.raises(TraceError, match="undeclared kind code"):
            loads_trace(text)

    def test_wrong_payload_arity_rejected(self):
        text = self._v2_stream(["s", "T"], ["o", 0, 1, 0, 99])
        with pytest.raises(TraceError, match="malformed op record"):
            loads_trace(text)

    def test_unknown_tag_rejected(self):
        text = self._v2_stream(["z", 1])
        with pytest.raises(TraceError, match="unrecognized"):
            loads_trace(text)


class TestGzip:
    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_gz_suffix_round_trips(self, tmp_path, version):
        path = tmp_path / "trace.jsonl.gz"
        trace = sample_trace()
        save_trace_file(trace, path, version=version)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzip
        back = load_trace_file(path)
        assert back.ops == trace.ops
        assert set(back.tasks) == set(trace.tasks)

    def test_gz_stream_is_the_plain_stream(self, tmp_path):
        plain, packed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
        trace = sample_trace()
        save_trace_file(trace, plain)
        save_trace_file(trace, packed)
        assert gzip.decompress(packed.read_bytes()).decode() == plain.read_text()


class TestStreamingWriter:
    def test_v2_writer_streams_line_by_line(self):
        """The writer must emit through the stream incrementally, never
        buffering the serialized trace."""

        class CountingIO(io.StringIO):
            def __init__(self):
                super().__init__()
                self.writes = 0

            def write(self, s):
                self.writes += 1
                return super().write(s)

        trace = sample_trace()
        fp = CountingIO()
        from repro.trace import dump_trace

        dump_trace(trace, fp)
        # one write per emitted line: header + tasks + defs + ops
        assert fp.writes == len(fp.getvalue().splitlines())
        assert fp.writes > 1 + len(trace.tasks) + len(trace)
