"""Tests for the structured JSON logging layer (repro.obs.logging)."""

import io
import json
import logging

from repro.obs import configure_json_logging, get_logger
from repro.obs.logging import ROOT_LOGGER


def _fresh_logger(name: str) -> logging.Logger:
    logger = logging.getLogger(name)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    return logger


class TestJsonFormatter:
    def _log_one(self, emit):
        stream = io.StringIO()
        logger = _fresh_logger(f"{ROOT_LOGGER}.t{id(emit)}")
        configure_json_logging(stream=stream, logger=logger)
        emit(logger)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        return json.loads(lines[0])

    def test_core_fields(self):
        doc = self._log_one(lambda log: log.info("connection open"))
        assert doc["event"] == "connection open"
        assert doc["level"] == "INFO"
        assert doc["ts"].endswith("+00:00")  # ISO-8601 UTC

    def test_extra_context_is_top_level(self):
        doc = self._log_one(
            lambda log: log.warning(
                "session stream damaged",
                extra={"session": "s-1", "shard": 2, "error": "bad frame"},
            )
        )
        assert doc["session"] == "s-1"
        assert doc["shard"] == 2
        assert doc["error"] == "bad frame"

    def test_reserved_key_collisions_get_prefixed(self):
        doc = self._log_one(
            lambda log: log.info("x", extra={"event": "shadow"})
        )
        assert doc["event"] == "x"
        assert doc["ctx_event"] == "shadow"

    def test_non_json_values_fall_back_to_repr(self):
        doc = self._log_one(
            lambda log: log.info("x", extra={"payload": b"\x93"})
        )
        assert doc["payload"] == repr(b"\x93")

    def test_exceptions_carry_a_traceback(self):
        def emit(log):
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                log.error("worker crashed", exc_info=True)

        doc = self._log_one(emit)
        assert "RuntimeError: boom" in doc["traceback"]


class TestConfiguration:
    def test_configure_is_idempotent(self):
        logger = _fresh_logger(f"{ROOT_LOGGER}.idem")
        stream = io.StringIO()
        configure_json_logging(stream=stream, logger=logger)
        configure_json_logging(stream=stream, logger=logger)
        assert len(logger.handlers) == 1
        logger.info("once")
        assert len(stream.getvalue().splitlines()) == 1

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("serve").name == f"{ROOT_LOGGER}.serve"
        assert get_logger(f"{ROOT_LOGGER}.serve").name == f"{ROOT_LOGGER}.serve"
        assert get_logger().name == ROOT_LOGGER
