"""CLI surface of the telemetry layer: `repro stats --json` /
`--trace-out`, and the `repro top` renderer."""

import json

import pytest

from repro.cli import _render_status, main
from repro.obs import STATS_SCHEMA
from repro.obs.export import MetricsServer
from repro.obs.metrics import Histogram, MetricsSnapshot


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli") / "trace.jsonl"
    assert main([
        "record", "connectbot", "-o", str(path), "--scale", "0.02",
    ]) == 0
    return str(path)


class TestStatsJson:
    def test_document_covers_every_section(self, trace_path, capsys):
        assert main(["stats", trace_path, "--stream", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == STATS_SCHEMA
        for section in ("trace", "decode", "build", "query", "stream",
                        "sparse"):
            assert section in doc
        # Sections actually computed are present; --sparse was not.
        assert doc["trace"]["ops"] > 0
        assert doc["decode"]["records"] > 0
        assert doc["build"]["key_nodes"] > 0
        assert doc["query"]["queries"] > 0
        assert doc["stream"]["ops_ingested"] == doc["trace"]["ops"]
        assert doc["sparse"] is None

    def test_stable_build_keys(self, trace_path, capsys):
        assert main(["stats", trace_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {
            "key_nodes", "edges", "rule_counts", "fixpoint_iterations",
            "derived_edges", "events", "loopers", "threads",
            "closure_recomputations", "bits_propagated",
            "edges_per_round", "profile",
        } <= set(doc["build"])
        assert doc["stream"] is None

    def test_json_output_is_the_only_stdout(self, trace_path, capsys):
        assert main(["stats", trace_path, "--json"]) == 0
        out = capsys.readouterr().out
        json.loads(out)  # the whole stdout parses as one document


class TestStatsTraceOut:
    def test_writes_a_chrome_trace(self, trace_path, tmp_path, capsys):
        spans_path = tmp_path / "spans.json"
        assert main([
            "stats", trace_path, "--stream", "--trace-out", str(spans_path),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(spans_path.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"trace.decode", "hb.scan", "hb.base_edges", "hb.closure",
                "hb.fixpoint", "detect.usefree", "stream.detect"} <= names
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_tracing_does_not_leak_into_later_runs(self, trace_path,
                                                   tmp_path, capsys):
        from repro.obs import disable_tracing

        assert main([
            "stats", trace_path, "--trace-out", str(tmp_path / "s.json"),
        ]) == 0
        capsys.readouterr()
        # The CLI leaves a recorder installed only for its own run; the
        # test harness resets it so later tests pay the no-op path.
        disable_tracing()


class TestTopRenderer:
    def _doc(self):
        snap = MetricsSnapshot()
        snap.counter("repro_router_frames_total", 100.0)
        snap.counter("repro_router_bytes_total", 5000.0)
        snap.counter("repro_router_sessions_total", 3.0)
        snap.gauge("repro_router_shards", 2.0)
        for shard in ("0", "1"):
            labels = {"shard": shard}
            snap.gauge("repro_shard_sessions_active", 1.0, labels=labels)
            snap.counter("repro_shard_sessions_finished_total", 2.0,
                         labels=labels)
            snap.counter("repro_shard_sessions_failed_total", 0.0,
                         labels=labels)
            snap.counter("repro_shard_ops_ingested_total", 500.0,
                         labels=labels)
            snap.counter("repro_shard_frames_handled_total", 50.0,
                         labels=labels)
            snap.gauge("repro_shard_queue_depth", 3.0, labels=labels)
            snap.gauge("repro_shard_queue_bound", 256.0, labels=labels)
        hist = Histogram()
        hist.observe(0.002)
        hist.observe(0.004)
        snap.histogram("repro_feed_latency_seconds", hist.data())
        return snap.as_dict()

    def test_renders_overview_shards_and_latency(self):
        text = _render_status(self._doc(), None, 0.0)
        assert "sessions routed 3" in text
        assert "active 2" in text
        assert "feed-to-detect latency" in text
        assert "p95" in text
        # one row per shard with its queue depth/bound
        assert "3/256" in text
        assert text.count("3/256") == 2

    def test_rates_between_two_scrapes(self):
        first = self._doc()
        second = json.loads(json.dumps(first))
        second["counters"]["repro_router_frames_total"] = 300.0
        text = _render_status(second, first, 2.0)
        assert "100/s" in text  # (300-100)/2

    def test_rates_dash_without_a_previous_scrape(self):
        assert "(-)" in _render_status(self._doc(), None, 0.0)


class TestTopCommand:
    def test_once_against_a_live_endpoint(self, capsys):
        snap = MetricsSnapshot()
        snap.counter("repro_router_frames_total", 10.0)
        snap.gauge("repro_router_shards", 1.0)
        server = MetricsServer(lambda: snap)
        try:
            host = f"127.0.0.1:{server.port}"
            assert main(["top", host, "--once"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "repro daemon status" in out
        assert "frames 10" in out

    def test_once_against_a_status_socket(self, tmp_path, capsys):
        from repro.obs.export import StatusSocketServer

        snap = MetricsSnapshot()
        snap.counter("repro_router_sessions_total", 4.0)
        path = str(tmp_path / "status.sock")
        server = StatusSocketServer(lambda: snap, path)
        try:
            assert main(["top", "--status-socket", path, "--once"]) == 0
        finally:
            server.stop()
        assert "sessions routed 4" in capsys.readouterr().out

    def test_requires_exactly_one_endpoint(self, capsys):
        assert main(["top"]) == 2
        assert main(["top", "host:1", "--status-socket", "x"]) == 2
        capsys.readouterr()

    def test_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(["top", "127.0.0.1:1", "--once"]) == 1
        assert "cannot reach" in capsys.readouterr().err
