"""Tests for schedule exploration (detector stability across seeds)."""

import pytest

from repro.analysis.exploration import ExplorationResult, explore_seeds
from repro.apps import MyTracksApp, VlcApp


class TestExploration:
    @pytest.fixture(scope="class")
    def mytracks_result(self):
        return explore_seeds(MyTracksApp, seeds=[1, 2, 3], scale=0.02)

    def test_reports_are_seed_stable(self, mytracks_result):
        """Predictive detection depends on causal structure, not on the
        accidental interleaving: every seed yields the same 8 reports."""
        assert mytracks_result.reports_per_seed == [8, 8, 8]
        assert mytracks_result.stability == 1.0
        assert mytracks_result.flaky_races == []

    def test_stable_set_has_the_signature_race(self, mytracks_result):
        fields = {key.field for key in mytracks_result.stable_races}
        assert "providerUtils" in fields

    def test_occurrence_counts_bounded_by_seed_count(self, mytracks_result):
        assert all(1 <= n <= 3 for n in mytracks_result.occurrences.values())

    def test_empty_trace_is_perfectly_stable(self):
        result = ExplorationResult(app="none", seeds=[1, 2])
        assert result.stability == 1.0

    def test_other_app_also_stable(self):
        result = explore_seeds(VlcApp, seeds=[4, 9], scale=0.02)
        assert result.stability == 1.0
        assert result.reports_per_seed == [7, 7]
