"""The sampled detector: budget semantics, screen soundness, seed
determinism, and the all-apps differential against full detection
(columnar/legacy store x sparse/dense closure bits)."""

import pytest

from repro.apps import ALL_APPS
from repro.detect import (
    DetectorOptions,
    SampledDetector,
    SamplerOptions,
    UseFreeDetector,
    detect_sampled,
)
from repro.hb import QueryBudget, build_happens_before
from repro.testing import TraceBuilder

AMPLE = 1 << 30


def keys_of(result):
    return {r.key for r in result.reports}


def race_keys(sampled):
    return {r.key for r in sampled.races}


def suspect_ids(sampled):
    return [(u.read_index, f.index) for u, f, _ in sampled.suspects]


def use_free_trace():
    """One cross-thread use-free race plus a same-task pair."""
    b = TraceBuilder()
    b.thread("main")
    b.thread("worker")
    b.begin("main")
    b.ptr_read("main", "obj.f", 7)
    b.deref("main", 7)
    b.end("main")
    b.begin("worker")
    b.ptr_read("worker", "obj.f", 7)
    b.deref("worker", 7)
    b.ptr_write("worker", "obj.f", None)
    b.end("worker")
    return b.build()


class TestBudgetSemantics:
    def test_exhaustive_when_population_fits(self):
        sampled = detect_sampled(use_free_trace(), SamplerOptions(budget=100))
        profile = sampled.profile
        assert profile.exhaustive
        assert profile.pairs_sampled == profile.pairs_population == 2
        assert profile.screened_same_task == 1  # the worker's own pair
        assert profile.suspects == 1
        assert sampled.flagged

    def test_budget_caps_sampled_pairs(self):
        sampled = detect_sampled(use_free_trace(), SamplerOptions(budget=1))
        assert not sampled.profile.exhaustive
        assert sampled.profile.pairs_sampled == 1

    def test_budget_spent_never_exceeds_allowance(self):
        for app_cls in ALL_APPS[:3]:
            trace = app_cls(scale=0.02, seed=0).run().trace
            for budget in (1, 3, 7):
                sampled = detect_sampled(trace, SamplerOptions(budget=budget))
                assert sampled.profile.pairs_sampled <= budget


class TestScreens:
    def test_same_task_pairs_are_screened(self):
        sampled = detect_sampled(use_free_trace(), SamplerOptions(budget=100))
        assert sampled.profile.screened_same_task == 1

    def test_lockset_screen_follows_detector_options(self):
        b = TraceBuilder()
        b.thread("main")
        b.thread("worker")
        b.begin("main")
        b.acquire("main", "L")
        b.ptr_read("main", "obj.f", 7)
        b.deref("main", 7)
        b.release("main", "L")
        b.end("main")
        b.begin("worker")
        b.acquire("worker", "L")
        b.ptr_write("worker", "obj.f", None)
        b.release("worker", "L")
        b.end("worker")
        trace = b.build()
        locked = detect_sampled(trace, SamplerOptions(budget=100))
        assert locked.profile.screened_lockset == 1
        assert not locked.flagged
        raw = detect_sampled(
            trace,
            SamplerOptions(
                budget=100, detector=DetectorOptions(lockset_filter=False)
            ),
        )
        assert raw.profile.screened_lockset == 0
        assert raw.flagged

    def test_fork_ordered_pair_is_screened(self):
        b = TraceBuilder()
        b.thread("main")
        b.thread("child")
        b.begin("main")
        b.ptr_read("main", "obj.f", 7)
        b.deref("main", 7)
        b.fork("main", "child")
        b.end("main")
        b.begin("child")
        b.ptr_write("child", "obj.f", None)
        b.end("child")
        sampled = detect_sampled(b.build(), SamplerOptions(budget=100))
        assert sampled.profile.screened_order == 1
        assert not sampled.flagged

    def test_send_chain_ordered_pair_is_screened(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("main")
        b.event("e1", "L")
        b.event("e2", "L")
        b.begin("main")
        b.ptr_read("main", "obj.f", 7)
        b.deref("main", 7)
        b.send("main", "e1")
        b.send("main", "e2")
        b.end("main")
        b.begin("e1")
        b.end("e1")
        b.begin("e2")
        b.ptr_write("e2", "obj.f", None)
        b.end("e2")
        trace = b.build()
        sampled = detect_sampled(trace, SamplerOptions(budget=100))
        assert sampled.profile.screened_order == 1
        assert not sampled.flagged
        # The screen agrees with the real relation.
        assert not UseFreeDetector(trace).detect().reports

    def test_screen_never_hides_a_reported_race(self):
        # Exhaustive screen-mode flagging covers full detection on
        # every stock app: a racy trace is always flagged.
        for app_cls in ALL_APPS:
            trace = app_cls(scale=0.02, seed=0).run().trace
            full = UseFreeDetector(trace).detect()
            sampled = detect_sampled(trace, SamplerOptions(budget=AMPLE))
            if full.reports:
                assert sampled.flagged, app_cls.name


class TestDeterminism:
    @pytest.mark.parametrize("budget", [1, 4, 64])
    def test_identical_seeds_identical_results(self, budget):
        trace = ALL_APPS[0](scale=0.05, seed=1).run().trace
        options = SamplerOptions(budget=budget, seed=9, confirm=True)
        first = detect_sampled(trace, options)
        second = detect_sampled(trace, options)
        assert suspect_ids(first) == suspect_ids(second)
        assert race_keys(first) == race_keys(second)
        assert first.profile == second.profile

    def test_seed_changes_the_sample(self):
        trace = ALL_APPS[4](scale=0.05, seed=1).run().trace  # browser
        population = detect_sampled(
            trace, SamplerOptions(budget=AMPLE)
        ).profile.pairs_population
        assert population > 8
        draws = {
            tuple(
                suspect_ids(
                    detect_sampled(trace, SamplerOptions(budget=4, seed=seed))
                )
            )
            for seed in range(8)
        }
        assert len(draws) > 1


@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "legacy"])
@pytest.mark.parametrize("dense_bits", [False, True], ids=["sparse", "dense"])
class TestDifferentialAllApps:
    """Acceptance: sampled vs full on all ten apps x store x bits."""

    def test_confirmed_races_subset_and_exhaustively_equal(
        self, columnar, dense_bits
    ):
        detector = DetectorOptions(dense_bits=dense_bits)
        for app_cls in ALL_APPS:
            trace = app_cls(scale=0.02, seed=0).run(columnar=columnar).trace
            full_keys = keys_of(
                UseFreeDetector(trace, detector).detect()
            )
            exhaustive = detect_sampled(
                trace,
                SamplerOptions(
                    budget=AMPLE, confirm=True, detector=detector
                ),
            )
            assert race_keys(exhaustive) == full_keys, app_cls.name
            partial = detect_sampled(
                trace,
                SamplerOptions(budget=3, confirm=True, detector=detector),
            )
            assert race_keys(partial) <= full_keys, app_cls.name


class TestQueryBudget:
    def test_truncates_and_charges(self):
        trace = use_free_trace()
        hb = build_happens_before(trace)
        pairs = [(1, 7), (1, 7), (5, 7), (1, 7)]
        budget = QueryBudget(limit=3)
        verdicts = hb.concurrent_pairs(pairs, budget=budget)
        assert len(verdicts) == 3
        assert budget.spent == 3
        assert budget.exhausted
        assert budget.remaining == 0
        # spent accumulates across batches; nothing more is answered
        assert hb.concurrent_pairs(pairs, budget=budget) == []
        assert budget.spent == 3

    def test_budgeted_prefix_matches_unbudgeted(self):
        trace = ALL_APPS[0](scale=0.02, seed=0).run().trace
        hb = build_happens_before(trace)
        accesses = SampledDetector(trace).accesses
        pairs = [
            (use.read_index, free.index)
            for use in accesses.uses
            for free in accesses.frees
        ]
        full = hb.concurrent_pairs(pairs)
        budget = QueryBudget(limit=5)
        assert hb.concurrent_pairs(pairs, budget=budget) == full[:5]


class TestAccessIndexInjection:
    def test_injected_index_matches_extraction(self):
        trace = ALL_APPS[0](scale=0.02, seed=0).run().trace
        own = detect_sampled(trace, SamplerOptions(budget=AMPLE))
        injected = SampledDetector(
            trace,
            SamplerOptions(budget=AMPLE),
            accesses=UseFreeDetector(trace).accesses,
        ).detect()
        assert suspect_ids(own) == suspect_ids(injected)
        assert own.profile == injected.profile
