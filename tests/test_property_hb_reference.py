"""Differential testing: the optimized builder vs. the literal model.

The optimized happens-before builder (key-node graph, bitset closure,
masked rule application, chain seeding) must agree with the brute-force
reference implementation of Section 3.3 on *every* ordering query, for
every generated trace and for several model configurations.
"""

from hypothesis import given, settings, strategies as st

from repro import build_happens_before
from repro.hb import CAFA_MODEL, CONVENTIONAL_MODEL, NO_QUEUE_MODEL, ModelConfig
from repro.hb.reference import ReferenceHappensBefore
from repro.testing import TraceBuilder

from tests.test_property_runtime_hb import program_specs, run_program


def assert_equivalent(trace, config):
    fast = build_happens_before(trace, config)
    slow = ReferenceHappensBefore(trace, config)
    n = len(trace)
    for i in range(n):
        for j in range(n):
            assert fast.ordered(i, j) == slow.ordered(i, j), (
                i,
                j,
                trace[i],
                trace[j],
                config,
            )


@settings(max_examples=25, deadline=None)
@given(program_specs())
def test_builder_matches_reference_cafa_model(spec):
    trace = run_program(spec)
    if len(trace) > 120:  # keep the O(n^3) oracle tractable
        trace.ops = trace.ops  # no truncation — skip instead
        return
    assert_equivalent(trace, CAFA_MODEL)


@settings(max_examples=15, deadline=None)
@given(program_specs())
def test_builder_matches_reference_conventional_model(spec):
    trace = run_program(spec)
    if len(trace) > 120:
        return
    assert_equivalent(trace, CONVENTIONAL_MODEL)


@settings(max_examples=15, deadline=None)
@given(program_specs())
def test_builder_matches_reference_no_queue_model(spec):
    trace = run_program(spec)
    if len(trace) > 120:
        return
    assert_equivalent(trace, NO_QUEUE_MODEL)


class TestCuratedEquivalence:
    """The Figure 4 traces, where the fixpoint does real work."""

    def _fig4d(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S")
        b.event("C", looper="L")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("S"); b.send("S", "C"); b.end("S")
        b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
        b.begin("B"); b.end("B")
        b.begin("A"); b.end("A")
        return b.build()

    def test_fig4d_equivalence_all_models(self):
        trace = self._fig4d()
        for config in (CAFA_MODEL, CONVENTIONAL_MODEL, NO_QUEUE_MODEL):
            assert_equivalent(trace, config)

    def test_fig4a_equivalence(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("S1"); b.thread("S2"); b.thread("T")
        b.event("A", looper="L"); b.event("B", looper="L")
        b.begin("S1"); b.send("S1", "A"); b.end("S1")
        b.begin("S2"); b.send("S2", "B"); b.end("S2")
        b.begin("A"); b.fork("A", "T"); b.end("A")
        b.begin("T"); b.register("T", "Lst"); b.end("T")
        b.begin("B"); b.perform("B", "Lst"); b.end("B")
        assert_equivalent(b.build(), CAFA_MODEL)

    def test_reference_agrees_on_fig4d_verdict(self):
        slow = ReferenceHappensBefore(self._fig4d())
        trace = self._fig4d()
        end_b = max(i for i, op in enumerate(trace.ops) if op.task == "B")
        begin_a = min(i for i, op in enumerate(trace.ops) if op.task == "A")
        assert slow.ordered(end_b, begin_a)

    def test_queue_rule_seeding_adds_nothing_extra(self):
        """A long same-task send chain: the seeded consecutive edges
        must yield exactly the reference orderings (no more, no less)."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        names = [f"E{i}" for i in range(6)]
        for name in names:
            b.event(name, looper="L")
        b.begin("T")
        for name in names:
            b.send("T", name, delay=2)
        b.end("T")
        for name in names:
            b.begin(name)
            b.end(name)
        assert_equivalent(b.build(), CAFA_MODEL)
