"""Tests pinning the apps' bespoke (realistic) scenario structures."""

import pytest

from repro.analysis import evaluate_run
from repro.apps import (
    BrowserApp,
    CameraApp,
    FBReaderApp,
    FirefoxApp,
    MusicApp,
    MyTracksApp,
    VlcApp,
    ZXingApp,
)
from repro.detect import RaceClass, UseFreeDetector
from repro.trace import IpcCall, MethodEnter


def evaluate(app_cls, scale=0.02):
    run = app_cls(scale=scale, seed=1).run()
    return run, evaluate_run(run)


class TestBrowserAsyncTask:
    def test_page_load_race_uses_a_worker_thread(self):
        run, ev = evaluate(BrowserApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "webview"
        )
        assert report.race_class is RaceClass.CONVENTIONAL
        assert report.key.use_method == "browser/renderWorker0"
        assert report.key.free_method == "destroyTab0"

    def test_both_tab_fields_race(self):
        run, ev = evaluate(BrowserApp)
        fields = {r.key.field for r in ev.result.reports}
        assert {"webview", "pageSnapshot"} <= fields


class TestZXingHandlerMessages:
    def test_decode_message_race_classified_b(self):
        run, ev = evaluate(ZXingApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "cameraManager"
        )
        assert report.race_class is RaceClass.INTER_THREAD
        assert report.key.use_method == "captureHandler.msg[1]"
        assert report.key.free_method == "zxing/decode"

    def test_message_event_exists_in_trace(self):
        run, _ = evaluate(ZXingApp)
        labels = {info.label for info in run.trace.tasks.values()}
        assert "captureHandler.msg[1]" in labels


class TestFBReaderRotation:
    def test_rotation_race_classified_a(self):
        run, ev = evaluate(FBReaderApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "bookModel"
        )
        assert report.race_class is RaceClass.INTRA_THREAD
        assert report.key.free_method == "onConfigurationChanged"

    def test_rebuild_in_a_later_event_does_not_mask_the_free(self):
        """The re-allocation happens in a different event, so the
        intra-event-allocation heuristic must NOT filter this race."""
        run, ev = evaluate(FBReaderApp)
        filtered_fields = {
            r.key.field for r in ev.result.filtered_reports
        }
        assert "bookModel" not in filtered_fields


class TestMusicBytecode:
    def test_cursor_race_comes_from_real_bytecode(self):
        run, ev = evaluate(MusicApp)
        report = next(r for r in ev.result.reports if r.key.field == "mCursor")
        assert report.race_class is RaceClass.INTRA_THREAD
        assert report.key.use_method == "MediaPlayback.refreshNow"
        entered = {
            op.method for op in run.trace if isinstance(op, MethodEnter)
        }
        assert "MediaPlayback.refreshNow" in entered


class TestCameraBinder:
    def test_capture_callback_race_through_the_media_server(self):
        run, ev = evaluate(CameraApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "cameraDevice"
        )
        assert report.race_class is RaceClass.INTRA_THREAD
        # the chain really crossed process boundaries
        calls = [op for op in run.trace if isinstance(op, IpcCall)]
        assert any(op.service == "media.camera" for op in calls)

    def test_media_server_process_present(self):
        run, _ = evaluate(CameraApp)
        processes = {info.process for info in run.trace.tasks.values()}
        assert "mediaserver" in processes


class TestMyTracksService:
    def test_figure1_chain_is_cross_process(self):
        run, ev = evaluate(MyTracksApp)
        processes = {info.process for info in run.trace.tasks.values()}
        assert any("mytracks.services" in p for p in processes)


class TestFirefoxGecko:
    def test_gecko_compositor_race_classified_c(self):
        run, ev = evaluate(FirefoxApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "layerView"
        )
        assert report.race_class is RaceClass.CONVENTIONAL
        assert report.key.use_method == "firefox/Gecko"

    def test_jni_observer_fp1_present(self):
        run, ev = evaluate(FirefoxApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "observer"
        )
        assert report.verdict is not None
        assert report.verdict.value == "fp-1"


class TestVlcDecoder:
    def test_surface_race_classified_c(self):
        run, ev = evaluate(VlcApp)
        report = next(
            r for r in ev.result.reports if r.key.field == "surfaceHolder"
        )
        assert report.race_class is RaceClass.CONVENTIONAL
        assert report.key.use_method == "vlc/vlcDecoder"
        assert report.key.free_method == "surfaceDestroyed"
