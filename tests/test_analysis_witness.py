"""Tests for the violation witness generator."""

import pytest

from repro.analysis.witness import ViolationWitness, WitnessError, build_witness
from repro.apps import MyTracksApp
from repro.detect import UseFreeDetector
from repro.testing import TraceBuilder
from repro.trace import Begin, End, TaskKind


def detect_on(trace):
    detector = UseFreeDetector(trace)
    return detector, detector.detect()


def simple_race_trace():
    b = TraceBuilder()
    b.looper("L")
    b.thread("T1")
    b.thread("T2")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.begin("T1"); b.send("T1", "A"); b.end("T1")
    b.begin("T2"); b.send("T2", "B"); b.end("T2")
    b.begin("A")
    b.ptr_read("A", ("obj", 1, "p"), object_id=9, method="onUse", pc=0)
    b.deref("A", object_id=9, method="onUse", pc=1)
    b.end("A")
    b.begin("B")
    b.ptr_write("B", ("obj", 1, "p"), value=None, container=1, method="onFree", pc=0)
    b.end("B")
    return b.build()


class TestWitnessConstruction:
    def test_free_scheduled_before_use(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        assert witness.free_position < witness.use_position

    def test_witness_is_a_permutation(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        assert sorted(witness.order) == list(range(len(trace)))

    def test_witness_respects_happens_before(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        hb = detector.hb
        witness = build_witness(trace, hb, result.reports[0])
        position = {op: i for i, op in enumerate(witness.order)}
        for u, v, _rule in hb.graph.edges():
            assert position[hb.graph.op_of(u)] < position[hb.graph.op_of(v)]

    def test_witness_respects_program_order(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        position = {op: i for i, op in enumerate(witness.order)}
        per_task = {}
        for i, op in enumerate(trace.ops):
            per_task.setdefault(op.task, []).append(i)
        for ops in per_task.values():
            positions = [position[i] for i in ops]
            assert positions == sorted(positions)

    def test_witness_keeps_looper_events_atomic(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        open_event = {}
        for op_index in witness.order:
            op = trace[op_index]
            info = trace.tasks.get(op.task)
            if info is None or info.task_kind is not TaskKind.EVENT:
                continue
            current = open_event.get(info.looper)
            if isinstance(op, Begin):
                assert current is None
                open_event[info.looper] = op.task
            elif isinstance(op, End):
                assert current == op.task
                open_event[info.looper] = None
            else:
                assert current == op.task

    def test_event_order_flips_the_dispatch(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        order = witness.event_order()
        assert order.index("B") < order.index("A")

    def test_format_mentions_both_endpoints(self):
        trace = simple_race_trace()
        detector, result = detect_on(trace)
        witness = build_witness(trace, detector.hb, result.reports[0])
        text = witness.format()
        assert "the FREE" in text
        assert "the USE" in text


class TestWitnessOnMyTracks:
    def test_figure1b_schedule_reconstructed(self):
        """The generated witness is exactly Figure 1b: onDestroy runs
        before onServiceConnected."""
        run = MyTracksApp(scale=0.02, seed=1).run()
        detector = UseFreeDetector(run.trace)
        result = detector.detect()
        report = next(r for r in result.reports if r.key.field == "providerUtils")
        witness = build_witness(run.trace, detector.hb, report)
        order = witness.event_order()
        destroy = next(t for t in order if "onDestroy" in t)
        connected = next(t for t in order if "onServiceConnected" in t)
        assert order.index(destroy) < order.index(connected)

    def test_every_mytracks_report_has_a_witness(self):
        run = MyTracksApp(scale=0.02, seed=1).run()
        detector = UseFreeDetector(run.trace)
        result = detector.detect()
        for report in result.reports:
            witness = build_witness(run.trace, detector.hb, report)
            assert witness.free_position < witness.use_position


class TestWitnessOnGeneratedPrograms:
    def test_every_detected_race_admits_a_witness(self):
        """Across several random-ish workloads: every report can be
        scheduled with the free first, under all HB + atomicity
        constraints (the predictive claim, checked constructively)."""
        from repro.apps import ALL_APPS

        for app_cls in ALL_APPS[:4]:
            run = app_cls(scale=0.02, seed=2).run()
            detector = UseFreeDetector(run.trace)
            result = detector.detect()
            for report in result.reports:
                witness = build_witness(run.trace, detector.hb, report)
                assert witness.free_position < witness.use_position
                # and it is a real permutation respecting HB
                position = {op: i for i, op in enumerate(witness.order)}
                for u, v, _rule in detector.hb.graph.edges():
                    assert (
                        position[detector.hb.graph.op_of(u)]
                        < position[detector.hb.graph.op_of(v)]
                    )
