"""Property-based tests: random simulated programs, global invariants.

Random event-driven programs (threads posting events with random
delays, sendAtFront, reads/writes, sleeps) are executed on the runtime;
the resulting traces must satisfy the structural invariants and the
happens-before relation must satisfy the properties the causality model
promises — on *every* generated program, not just the curated ones.
"""

import random as pyrandom

from hypothesis import given, settings, strategies as st

from repro import CAFA_MODEL, CONVENTIONAL_MODEL, build_happens_before
from repro.hb import VectorClockAnalysis
from repro.runtime import AndroidSystem, ExternalSource
from repro.trace import TaskKind


# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------

action_st = st.sampled_from(["read", "write", "post", "post_front", "sleep"])


@st.composite
def program_specs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=3))
    threads = []
    for _ in range(n_threads):
        actions = draw(st.lists(action_st, min_size=1, max_size=6))
        threads.append(actions)
    n_external = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return threads, n_external, seed


def run_program(spec):
    threads, n_external, seed = spec
    system = AndroidSystem(seed=seed)
    app = system.process("app")
    main = app.looper("main")
    rng = pyrandom.Random(seed)
    variables = ["x", "y", "z"]

    def make_handler(i):
        var = variables[i % len(variables)]

        def handler(ctx):
            ctx.read(var)
            ctx.write(var, i)

        return handler

    counter = [0]

    def make_body(actions):
        def body(ctx):
            for action in actions:
                counter[0] += 1
                i = counter[0]
                if action == "read":
                    ctx.read(variables[i % 3])
                elif action == "write":
                    ctx.write(variables[i % 3], i)
                elif action == "post":
                    ctx.post(
                        main, make_handler(i), delay_ms=rng.randrange(4), label=f"e{i}"
                    )
                elif action == "post_front":
                    ctx.post_at_front(main, make_handler(i), label=f"f{i}")
                elif action == "sleep":
                    yield from ctx.sleep(rng.randrange(1, 5))

        return body

    for t, actions in enumerate(threads):
        app.thread(f"t{t}", make_body(actions))

    if n_external:
        src = ExternalSource("ext")
        for k in range(n_external):
            src.at(5 + 3 * k, main, make_handler(1000 + k), f"ext{k}")
        src.attach(system, app)

    system.run(max_ms=2000)
    return system.trace()


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(program_specs())
def test_generated_traces_are_well_formed(spec):
    run_program(spec).validate()


@settings(max_examples=25, deadline=None)
@given(program_specs())
def test_hb_is_a_strict_partial_order(spec):
    trace = run_program(spec)
    hb = build_happens_before(trace)
    n = len(trace)
    indices = list(range(n))
    sample = indices if n <= 18 else indices[:: max(1, n // 18)]
    for i in sample:
        assert not hb.ordered(i, i), "irreflexivity"
        for j in sample:
            if hb.ordered(i, j):
                assert not hb.ordered(j, i), "asymmetry"
    # transitivity on a sampled triple set
    for i in sample[:8]:
        for j in sample[:8]:
            if not hb.ordered(i, j):
                continue
            for k in sample[:8]:
                if hb.ordered(j, k):
                    assert hb.ordered(i, k), "transitivity"


@settings(max_examples=25, deadline=None)
@given(program_specs())
def test_derived_order_is_consistent_with_execution(spec):
    """Every derived event ordering must agree with the observed
    dispatch order — the model derives only *guaranteed* orderings, and
    the observed execution is one possible schedule."""
    trace = run_program(spec)
    hb = build_happens_before(trace)
    events = [t for t, i in trace.tasks.items() if i.task_kind is TaskKind.EVENT]
    started = {}
    for idx, op in enumerate(trace.ops):
        if op.task in events and op.task not in started:
            started[op.task] = idx
    dispatched = [e for e in events if e in started]
    for e1 in dispatched:
        for e2 in dispatched:
            if e1 != e2 and hb.event_ordered(e1, e2):
                assert started[e1] < started[e2], (e1, e2)


@settings(max_examples=25, deadline=None)
@given(program_specs())
def test_vector_clock_order_is_a_subset_of_graph_order(spec):
    trace = run_program(spec)
    hb = build_happens_before(trace)
    vc = VectorClockAnalysis(trace)
    n = len(trace)
    step = max(1, n // 15)
    for i in range(0, n, step):
        for j in range(0, n, step):
            if i != j and vc.ordered(i, j):
                assert hb.ordered(i, j), (i, j)


@settings(max_examples=20, deadline=None)
@given(program_specs())
def test_conventional_order_is_a_superset_of_cafa_order(spec):
    """The conventional model (total looper order) can only *add*
    orderings — every CAFA ordering is conventionally ordered too."""
    trace = run_program(spec)
    cafa = build_happens_before(trace, CAFA_MODEL)
    conventional = build_happens_before(trace, CONVENTIONAL_MODEL)
    n = len(trace)
    step = max(1, n // 15)
    for i in range(0, n, step):
        for j in range(0, n, step):
            if i != j and cafa.ordered(i, j):
                assert conventional.ordered(i, j), (i, j)


@settings(max_examples=20, deadline=None)
@given(program_specs())
def test_serialization_round_trip_on_generated_traces(spec):
    from repro.trace import dumps_trace, loads_trace

    trace = run_program(spec)
    back = loads_trace(dumps_trace(trace))
    assert back.ops == trace.ops
    assert set(back.tasks) == set(trace.tasks)


@settings(max_examples=15, deadline=None)
@given(program_specs())
def test_same_seed_reproduces_the_same_trace(spec):
    a = run_program(spec)
    b = run_program(spec)
    assert a.ops == b.ops
