"""Sampled streaming mode: screen-at-epoch-close triage with
escalation to full detection, equal to full mode at ample budget and a
subset at starved budgets, through both the single-session analyzer
and the session router/daemon."""

import pytest

from repro.apps import ALL_APPS, make_app
from repro.cli import main
from repro.detect import SamplerOptions
from repro.stream import SessionRouter, StreamAnalyzer
from repro.trace import dumps_trace

from tests.test_stream_daemon import app_payloads, mux_stream

SCALE = 0.02
SEED = 1
AMPLE = SamplerOptions(budget=1 << 30)
STARVED = SamplerOptions(budget=1)

_TRACES = {}


def app_trace(name):
    if name not in _TRACES:
        _TRACES[name] = make_app(name, scale=SCALE, seed=SEED).run().trace
    return _TRACES[name]


def run_mode(trace, mode, sampling=None, **kwargs):
    analyzer = StreamAnalyzer(mode=mode, sampling=sampling, **kwargs)
    for line in dumps_trace(trace, version=2).splitlines():
        analyzer.feed_line(line)
    reports = [str(r) for r in analyzer.finish()]
    return analyzer, reports


class TestSampledAnalyzer:
    @pytest.mark.parametrize(
        "name", [a.name for a in ALL_APPS[:4]]
    )
    def test_ample_budget_matches_full_mode(self, name):
        trace = app_trace(name)
        _, full = run_mode(trace, "full")
        sampled_analyzer, sampled = run_mode(trace, "sampled", AMPLE)
        assert sampled == full
        profile = sampled_analyzer.profile
        assert profile.sampled_pairs > 0
        if full:
            assert profile.escalations >= 1

    def test_starved_budget_reports_a_subset(self):
        trace = app_trace(ALL_APPS[0].name)
        _, full = run_mode(trace, "full")
        _, sampled = run_mode(trace, "sampled", STARVED)
        assert set(sampled) <= set(full)

    def test_sampled_mode_never_builds_a_closure(self):
        analyzer, _ = run_mode(app_trace(ALL_APPS[0].name), "sampled", AMPLE)
        profile = analyzer.profile
        assert analyzer.cafa is None
        assert analyzer.conventional is None
        assert profile.polls == 0
        assert profile.fixpoint_rounds == 0

    def test_clean_session_skips_escalation(self):
        from repro.runtime import AndroidSystem

        system = AndroidSystem(seed=1)
        app = system.process("clean")
        app.thread("t", lambda ctx: ctx.write("x", 1))
        system.run()
        analyzer, reports = run_mode(system.trace(), "sampled", AMPLE)
        assert reports == []
        assert analyzer.profile.escalations == 0

    def test_detector_options_stay_coherent(self):
        # The analyzer forces the sampler's wrapped detector options to
        # its own, so triage and escalation judge the same model.
        analyzer = StreamAnalyzer(mode="sampled", sampling=AMPLE)
        assert analyzer.sampling.detector is analyzer.options

    def test_mode_is_validated(self):
        with pytest.raises(ValueError):
            StreamAnalyzer(mode="turbo")


class TestSampledRouter:
    def test_inline_router_matches_full_mode(self):
        payloads = dict(list(app_payloads().items())[:4])
        stream = mux_stream(payloads)

        def drain(mode, sampling=None):
            router = SessionRouter(0, mode=mode, sampling=sampling)
            router.feed(stream)
            return router.drain()

        full = drain("full")
        sampled = drain("sampled", AMPLE)
        for sid in payloads:
            assert (
                sampled.sessions[sid].reports == full.sessions[sid].reports
            ), sid
        merged = sampled.merged
        assert merged.sampled_pairs > 0
        assert merged.escalations >= 1

    def test_sharded_router_matches_inline(self):
        payloads = dict(list(app_payloads().items())[:4])
        stream = mux_stream(payloads)
        inline = SessionRouter(0, mode="sampled", sampling=AMPLE)
        inline.feed(stream)
        inline_report = inline.drain()
        sharded = SessionRouter(2, mode="sampled", sampling=AMPLE)
        sharded.feed(stream)
        sharded_report = sharded.drain()
        for sid in payloads:
            assert (
                sharded_report.sessions[sid].reports
                == inline_report.sessions[sid].reports
            ), sid

    def test_mode_is_validated(self):
        with pytest.raises(ValueError):
            SessionRouter(0, mode="turbo")


class TestServeSampledCli:
    def test_serve_mode_sampled_matches_full(self, tmp_path, capsys):
        import json

        from repro.stream import DaemonReport

        payloads = dict(list(app_payloads().items())[:2])
        mux_path = tmp_path / "fleet.mux"
        mux_path.write_bytes(mux_stream(payloads))

        def serve(*extra):
            json_path = tmp_path / f"daemon-{len(extra)}.json"
            rc = main(
                ["serve", str(mux_path), "--shards", "0", "--json",
                 str(json_path), *extra]
            )
            assert rc == 0
            capsys.readouterr()
            return DaemonReport.from_dict(
                json.loads(json_path.read_text(encoding="utf-8"))
            )

        full = serve()
        sampled = serve("--mode", "sampled", "--budget", "1048576")
        for sid in payloads:
            assert sampled.sessions[sid].reports == full.sessions[sid].reports
        assert sampled.merged.sampled_pairs > 0
