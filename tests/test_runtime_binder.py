"""Runtime tests: Binder IPC transactions and their trace records."""

import pytest

from repro.runtime import AndroidSystem, SimulationError
from repro.trace import IpcCall, IpcHandle, IpcReply, IpcReturn


def make_client_server(method, seed=1):
    system = AndroidSystem(seed=seed)
    app = system.process("app")
    server = system.process("server")
    system.add_service("svc", server, {"m": method})
    return system, app


class TestRpc:
    def test_call_returns_reply(self):
        system, app = make_client_server(lambda ctx, x: x * 2)
        got = []

        def client(ctx):
            reply = yield from ctx.binder_call("svc", "m", 21)
            got.append(reply)

        app.thread("client", client)
        system.run()
        assert got == [42]

    def test_transaction_records_share_txn_id(self):
        system, app = make_client_server(lambda ctx: "ok")

        def client(ctx):
            yield from ctx.binder_call("svc", "m")

        app.thread("client", client)
        system.run()
        trace = system.trace()
        call = next(op for op in trace if isinstance(op, IpcCall))
        handle = next(op for op in trace if isinstance(op, IpcHandle))
        reply = next(op for op in trace if isinstance(op, IpcReply))
        ret = next(op for op in trace if isinstance(op, IpcReturn))
        assert call.txn == handle.txn == reply.txn == ret.txn

    def test_record_order_call_handle_reply_return(self):
        system, app = make_client_server(lambda ctx: "ok")

        def client(ctx):
            yield from ctx.binder_call("svc", "m")

        app.thread("client", client)
        system.run()
        trace = system.trace()
        kinds = [
            op.kind.value
            for op in trace
            if isinstance(op, (IpcCall, IpcHandle, IpcReply, IpcReturn))
        ]
        assert kinds == ["ipc_call", "ipc_handle", "ipc_reply", "ipc_return"]

    def test_distinct_calls_get_distinct_txns(self):
        system, app = make_client_server(lambda ctx: "ok")

        def client(ctx):
            yield from ctx.binder_call("svc", "m")
            yield from ctx.binder_call("svc", "m")

        app.thread("client", client)
        system.run()
        txns = {op.txn for op in system.trace() if isinstance(op, IpcCall)}
        assert len(txns) == 2

    def test_oneway_call_does_not_block_or_reply(self):
        system, app = make_client_server(lambda ctx: "ignored")
        order = []

        def client(ctx):
            yield from ctx.binder_call("svc", "m", oneway=True)
            order.append("after-call")

        app.thread("client", client)
        system.run()
        trace = system.trace()
        assert not any(isinstance(op, IpcReply) for op in trace)
        assert not any(isinstance(op, IpcReturn) for op in trace)
        assert order == ["after-call"]

    def test_service_method_can_block(self):
        system, app = make_client_server(None)
        system.services["svc"].methods["m"] = _slow_method
        got = []

        def client(ctx):
            reply = yield from ctx.binder_call("svc", "m")
            got.append((reply, ctx.now_ms))

        app.thread("client", client)
        system.run()
        assert got[0][0] == "slow-done"
        assert got[0][1] >= 15

    def test_service_can_post_events_back(self):
        """The MyTracks shape: the service responds by posting an event
        into the app's looper."""
        system = AndroidSystem(seed=1)
        app = system.process("app")
        main = app.looper("main")
        server = system.process("server")
        ran = []

        def on_connected(ctx):
            ran.append("connected")

        def bind(ctx, reply_looper):
            ctx.post(reply_looper, on_connected, label="onServiceConnected")
            return "bound"

        system.add_service("svc", server, {"bind": bind})

        def client(ctx):
            reply = yield from ctx.binder_call("svc", "bind", main)
            ran.append(reply)

        app.thread("client", client)
        system.run()
        assert sorted(ran) == ["bound", "connected"]

    def test_unknown_service_raises(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")

        def client(ctx):
            yield from ctx.binder_call("ghost", "m")

        app.thread("client", client)
        with pytest.raises(SimulationError, match="unknown service"):
            system.run()

    def test_unknown_method_raises(self):
        system, app = make_client_server(lambda ctx: "ok")

        def client(ctx):
            yield from ctx.binder_call("svc", "ghost")

        app.thread("client", client)
        with pytest.raises(KeyError, match="ghost"):
            system.run()

    def test_duplicate_service_rejected(self):
        system = AndroidSystem()
        server = system.process("server")
        system.add_service("svc", server, {})
        with pytest.raises(SimulationError, match="duplicate service"):
            system.add_service("svc", server, {})

    def test_two_clients_interleave_safely(self):
        system, app = make_client_server(lambda ctx, x: x + 1)
        got = {}

        def make_client(name, value):
            def client(ctx):
                reply = yield from ctx.binder_call("svc", "m", value)
                got[name] = reply
            return client

        app.thread("c1", make_client("c1", 10))
        app.thread("c2", make_client("c2", 20))
        system.run()
        assert got == {"c1": 11, "c2": 21}

    def test_npe_in_service_method_records_violation(self):
        system = AndroidSystem(seed=1)
        app = system.process("app")
        server = system.process("server")
        holder = server.heap.new("Holder")
        holder.fields["p"] = None

        def bad(ctx):
            ctx.use_field(holder, "p")

        system.add_service("svc", server, {"m": bad})

        def client(ctx):
            yield from ctx.binder_call("svc", "m")

        app.thread("client", client)
        system.run()
        assert len(system.violations) == 1


def _slow_method(ctx):
    yield from ctx.sleep(15)
    return "slow-done"
