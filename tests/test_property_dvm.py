"""Property-based tests: random mini-DVM programs vs a Python oracle.

Random straight-line register programs are assembled, interpreted by
the instrumented VM, and independently evaluated by a direct Python
model of the same semantics; the return value and the heap effects
must agree, and the emitted instrumentation must satisfy the record
invariants of Section 5.3.
"""

from hypothesis import given, settings, strategies as st

from repro.dvm import (
    CollectingSink,
    Heap,
    HeapObject,
    Interpreter,
    MethodBuilder,
    Program,
)

REGISTERS = list(range(4))

instr_st = st.one_of(
    st.tuples(st.just("const"), st.sampled_from(REGISTERS), st.integers(-50, 50)),
    st.tuples(st.just("move"), st.sampled_from(REGISTERS), st.sampled_from(REGISTERS)),
    st.tuples(
        st.just("binop"),
        st.sampled_from(["+", "-", "*"]),
        st.sampled_from(REGISTERS),
        st.sampled_from(REGISTERS),
        st.sampled_from(REGISTERS),
    ),
    st.tuples(st.just("iput"), st.sampled_from(REGISTERS), st.sampled_from(["a", "b"])),
    st.tuples(st.just("iget"), st.sampled_from(REGISTERS), st.sampled_from(["a", "b"])),
)

program_st = st.lists(instr_st, min_size=1, max_size=12)


def build_and_oracle(spec):
    """Assemble the program and compute the oracle's expected state.

    Register 4 always holds a container object; scalar fields 'a'/'b'
    of that object are the mutable heap state.
    """
    builder = MethodBuilder("m", params=1)  # v0..: scratch, param in v0? no:
    # param 0 = the container object; move it to register 4 first
    builder.move(4, 0)
    builder.const(0, 0)
    builder.const(1, 0)
    builder.const(2, 0)
    builder.const(3, 0)

    registers = {0: 0, 1: 0, 2: 0, 3: 0}
    fields = {"a": 0, "b": 0}

    for instr in spec:
        op = instr[0]
        if op == "const":
            _, dst, value = instr
            builder.const(dst, value)
            registers[dst] = value
        elif op == "move":
            _, dst, src = instr
            builder.move(dst, src)
            registers[dst] = registers[src]
        elif op == "binop":
            _, sym, dst, a, b = instr
            builder.binop(sym, dst, a, b)
            fn = {"+": lambda x, y: x + y, "-": lambda x, y: x - y, "*": lambda x, y: x * y}[sym]
            registers[dst] = fn(registers[a], registers[b])
        elif op == "iput":
            _, src, field = instr
            builder.iput(src, 4, field)
            fields[field] = registers[src]
        elif op == "iget":
            _, dst, field = instr
            builder.iget(dst, 4, field)
            registers[dst] = fields[field]

    builder.return_value(0)
    return builder.build(), registers[0], fields


@settings(max_examples=200, deadline=None)
@given(program_st)
def test_interpreter_matches_python_oracle(spec):
    method, expected_return, expected_fields = build_and_oracle(spec)
    program = Program()
    program.add_method(method)
    heap = Heap()
    sink = CollectingSink()
    interp = Interpreter(program, heap, sink)
    container = heap.new("Box")
    container.fields.update({"a": 0, "b": 0})
    result = interp.invoke("m", [container])
    assert result == expected_return
    for field, value in expected_fields.items():
        assert container.fields.get(field) == value


@settings(max_examples=100, deadline=None)
@given(program_st)
def test_instrumentation_invariants(spec):
    method, _, _ = build_and_oracle(spec)
    program = Program()
    program.add_method(method)
    heap = Heap()
    sink = CollectingSink()
    interp = Interpreter(program, heap, sink)
    container = heap.new("Box")
    container.fields.update({"a": 0, "b": 0})
    interp.invoke("m", [container])

    n_iput = sum(1 for i in spec if i[0] == "iput")
    n_iget = sum(1 for i in spec if i[0] == "iget")
    # every scalar field access logs exactly one rd/wr and one deref
    assert len(sink.of_kind("write")) == n_iput
    assert len(sink.of_kind("read")) == n_iget
    assert len(sink.of_kind("deref")) == n_iput + n_iget
    # every deref names the container
    assert all(r[1] == container.object_id for r in sink.of_kind("deref"))
    # balanced method frames, normal exit
    (enter,) = sink.of_kind("method_enter")
    (leave,) = sink.of_kind("method_exit")
    assert enter[1] == leave[1] == "m"
    assert leave[3] is False


@settings(max_examples=100, deadline=None)
@given(program_st, st.integers(0, 2**16))
def test_interpreter_is_deterministic(spec, _salt):
    method, _, _ = build_and_oracle(spec)

    def run_once():
        program = Program()
        program.add_method(method)
        heap = Heap()
        interp = Interpreter(program, heap, CollectingSink())
        box = heap.new("Box")
        box.fields.update({"a": 0, "b": 0})
        return interp.invoke("m", [box])

    assert run_once() == run_once()
