"""Monotonicity properties of the detector's option lattice.

Weakening the model or disabling filters can only *add* reports:

* disabling a pruning heuristic never removes a report;
* disabling the lockset check never removes a report;
* dropping happens-before rules (fewer orderings) never removes a
  report.

Checked across the application workloads and random seeds — violations
would indicate a filter that is not a pure refinement.
"""

import pytest

from repro.apps import ALL_APPS
from repro.detect import DetectorOptions, UseFreeDetector
from repro.hb import CAFA_MODEL, NO_QUEUE_MODEL, ModelConfig


def keys_of(result):
    return {r.key for r in result.reports}


@pytest.fixture(scope="module")
def runs():
    return {
        app_cls.name: app_cls(scale=0.02, seed=3).run() for app_cls in ALL_APPS[:5]
    }


@pytest.mark.parametrize("app_name", [a.name for a in ALL_APPS[:5]])
class TestMonotonicity:
    def test_disabling_heuristics_only_adds_reports(self, app_name, runs):
        trace = runs[app_name].trace
        full = UseFreeDetector(trace).detect()
        raw = UseFreeDetector(
            trace, DetectorOptions(if_guard=False, intra_event_allocation=False)
        ).detect()
        assert keys_of(full) <= keys_of(raw)

    def test_disabling_lockset_only_adds_reports(self, app_name, runs):
        trace = runs[app_name].trace
        full = UseFreeDetector(trace).detect()
        no_lockset = UseFreeDetector(
            trace, DetectorOptions(lockset_filter=False)
        ).detect()
        assert keys_of(full) <= keys_of(no_lockset)

    def test_dropping_queue_rules_only_adds_reports(self, app_name, runs):
        trace = runs[app_name].trace
        full = UseFreeDetector(trace).detect()
        no_queue = UseFreeDetector(
            trace, DetectorOptions(model=NO_QUEUE_MODEL)
        ).detect()
        assert keys_of(full) <= keys_of(no_queue)

    def test_dropping_all_base_rules_only_adds_reports(self, app_name, runs):
        trace = runs[app_name].trace
        full = UseFreeDetector(trace).detect()
        bare = UseFreeDetector(
            trace,
            DetectorOptions(
                model=ModelConfig(
                    fork_join=False,
                    signal_wait=False,
                    listener=False,
                    external_input=False,
                    ipc=False,
                    atomicity=False,
                    queue_rule_1=False,
                    queue_rule_2=False,
                    queue_rule_3=False,
                    queue_rule_4=False,
                )
            ),
        ).detect()
        assert keys_of(full) <= keys_of(bare)
