"""Robustness of the offline analysis on imperfect traces.

Real trace collection is lossy: the logger is stopped mid-session, so
tasks may never end, sent events may never run, and listener registers
may predate the window.  The builder must degrade gracefully — never
crash, never invent orderings — because missing information may only
*weaken* the happens-before relation (more reported races, the paper's
stated bias), not strengthen it.
"""

import pytest

from repro import build_happens_before
from repro.detect import detect_use_free_races
from repro.testing import TraceBuilder


class TestTruncatedTraces:
    def test_task_without_end_still_analyzable(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        i = b.read("t", "x")
        j = b.write("t", "y")
        trace = b.build(validate=False)  # no end(t)
        hb = build_happens_before(trace)
        assert hb.ordered(i, j)

    def test_event_sent_but_never_dispatched(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("pending", looper="L")
        b.begin("T")
        b.send("T", "pending", delay=999)
        b.end("T")
        trace = b.build()
        hb = build_happens_before(trace)  # must not crash
        assert hb.graph.node_count > 0

    def test_queue_rules_skip_undispatched_partners(self):
        """An undispatched event cannot order or be ordered."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("A", looper="L")
        b.event("ghost", looper="L")
        b.begin("T")
        b.send("T", "A", delay=1)
        b.send("T", "ghost", delay=1)
        b.end("T")
        b.begin("A"); b.end("A")
        hb = build_happens_before(b.build())
        # "A" has no dispatched partner, so no queue edge involves it
        # beyond its own send; nothing orders A after anything else.
        begin_a = hb.task_bounds("A")[0]
        assert not any(
            hb.ordered(begin_a, i) for i in range(begin_a)
        ) or hb.ordered(0, begin_a)

    def test_perform_without_any_register(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("E", looper="L")
        b.begin("T"); b.send("T", "E"); b.end("T")
        b.begin("E")
        p = b.perform("E", "unregistered")
        b.end("E")
        hb = build_happens_before(b.build())
        # without a register record, nothing (except its send) reaches
        # into the performing event
        assert hb.explain(p, p) is None

    def test_join_on_never_started_thread(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("ghost")
        b.begin("t")
        b.join("t", "ghost")
        b.end("t")
        trace = b.build(validate=False)
        build_happens_before(trace)  # skipped edge, no crash

    def test_wait_without_any_notify(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        b.wait("t", "mon", ticket=7)
        b.end("t")
        build_happens_before(b.build())

    def test_detector_on_truncated_trace(self):
        """A use whose event never ends still races a free."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("T1")
        b.thread("T2")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("T1"); b.send("T1", "B"); b.end("T1")
        b.begin("T2"); b.send("T2", "A"); b.end("T2")
        b.begin("B")
        b.ptr_write("B", ("obj", 1, "p"), value=None, method="onFree", pc=0)
        b.end("B")
        b.begin("A")
        b.ptr_read("A", ("obj", 1, "p"), object_id=9, method="onUse", pc=0)
        b.deref("A", object_id=9, method="onUse", pc=1)
        # truncation: A never ends
        trace = b.build(validate=False)
        result = detect_use_free_races(trace)
        assert result.report_count() == 1

    def test_empty_trace(self):
        from repro.trace import Trace

        hb = build_happens_before(Trace())
        assert hb.graph.node_count == 0

    def test_single_op_trace(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        trace = b.build(validate=False)
        hb = build_happens_before(trace)
        assert not hb.ordered(0, 0)
