"""Unit tests for the key-node graph and its reachability index."""

import pytest

from repro.hb import HBCycleError, KeyGraph


def chain_graph(n):
    g = KeyGraph()
    nodes = [g.add_node(i) for i in range(n)]
    for u, v in zip(nodes, nodes[1:]):
        g.add_edge(u, v, "po")
    return g, nodes


class TestKeyGraph:
    def test_add_node_is_idempotent(self):
        g = KeyGraph()
        assert g.add_node(7) == g.add_node(7)
        assert g.node_count == 1

    def test_node_op_mapping(self):
        g = KeyGraph()
        node = g.add_node(42)
        assert g.op_of(node) == 42
        assert g.node_of(42) == node
        assert g.has_node(42) and not g.has_node(43)

    def test_duplicate_edge_rejected_quietly(self):
        g, nodes = chain_graph(2)
        assert not g.add_edge(nodes[0], nodes[1], "again")
        assert g.edge_count == 1

    def test_edge_rule_recorded(self):
        g, nodes = chain_graph(2)
        assert g.edge_rule(nodes[0], nodes[1]) == "po"
        assert g.edge_rule(nodes[1], nodes[0]) is None

    def test_reachability_is_reflexive_transitive(self):
        g, nodes = chain_graph(5)
        assert g.reaches(nodes[0], nodes[0])
        assert g.reaches(nodes[0], nodes[4])
        assert not g.reaches(nodes[4], nodes[0])

    def test_reach_set_bitset(self):
        g, nodes = chain_graph(3)
        bits = g.reach_set(nodes[0])
        assert bits == 0b111

    def test_diamond_reachability(self):
        g = KeyGraph()
        a, b, c, d = (g.add_node(i) for i in range(4))
        g.add_edge(a, b, "x")
        g.add_edge(a, c, "x")
        g.add_edge(b, d, "x")
        g.add_edge(c, d, "x")
        assert g.reaches(a, d)
        assert not g.reaches(b, c)
        assert not g.reaches(c, b)

    def test_closure_invalidated_by_new_edges(self):
        g = KeyGraph()
        a, b = g.add_node(0), g.add_node(1)
        assert not g.reaches(a, b)
        g.add_edge(a, b, "late")
        assert g.reaches(a, b)

    def test_cycle_detected_with_diagnostic(self):
        g = KeyGraph()
        a, b, c = (g.add_node(i) for i in range(3))
        g.add_edge(a, b, "x")
        g.add_edge(b, c, "x")
        g.add_edge(c, a, "x")
        with pytest.raises(HBCycleError) as excinfo:
            g.reaches(a, b)
        assert set(excinfo.value.cycle) <= {0, 1, 2}
        assert len(excinfo.value.cycle) >= 3

    def test_self_loop_is_a_cycle(self):
        g = KeyGraph()
        a = g.add_node(0)
        g.add_edge(a, a, "x")
        with pytest.raises(HBCycleError):
            g.reaches(a, a)

    def test_find_path_returns_shortest(self):
        g = KeyGraph()
        nodes = [g.add_node(i) for i in range(4)]
        g.add_edge(nodes[0], nodes[1], "a")
        g.add_edge(nodes[1], nodes[3], "b")
        g.add_edge(nodes[0], nodes[2], "c")
        g.add_edge(nodes[2], nodes[3], "d")
        path = g.find_path(nodes[0], nodes[3])
        assert path is not None
        assert len(path) == 3

    def test_find_path_none_when_unreachable(self):
        g, nodes = chain_graph(2)
        assert g.find_path(nodes[1], nodes[0]) is None

    def test_find_path_trivial(self):
        g = KeyGraph()
        a = g.add_node(0)
        assert g.find_path(a, a) == [a]

    def test_edges_iterator(self):
        g, nodes = chain_graph(3)
        edges = list(g.edges())
        assert len(edges) == 2
        assert all(rule == "po" for _, _, rule in edges)

    def test_large_chain_closure(self):
        g, nodes = chain_graph(500)
        assert g.reaches(nodes[0], nodes[499])
        assert not g.reaches(nodes[499], nodes[0])
        assert g.reach_set(nodes[0]).bit_count() == 500
