"""Tests for the recovery of uses/frees/guards from low-level records."""

from repro.detect import extract_accesses
from repro.testing import TraceBuilder
from repro.trace import BranchKind


ADDR = ("obj", 1, "ptr")
OTHER = ("obj", 2, "ptr")


def simple_builder():
    b = TraceBuilder()
    b.thread("t")
    b.begin("t")
    return b


class TestUseRecovery:
    def test_deref_matches_nearest_previous_read(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.deref("t", object_id=9, method="m", pc=1)
        b.end("t")
        index = extract_accesses(b.build())
        assert len(index.uses) == 1
        use = index.uses[0]
        assert use.address == ADDR
        assert use.object_id == 9
        assert len(use.deref_indices) == 1

    def test_unmatched_deref_is_not_a_use(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.deref("t", object_id=7, method="m", pc=1)  # different object
        b.end("t")
        index = extract_accesses(b.build())
        assert index.uses == []

    def test_nearest_read_wins_over_earlier_one(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.ptr_read("t", OTHER, object_id=9, method="m", pc=1)
        b.deref("t", object_id=9, method="m", pc=2)
        b.end("t")
        index = extract_accesses(b.build())
        assert len(index.uses) == 1
        assert index.uses[0].address == OTHER  # the nearer read

    def test_matching_is_per_task(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.deref("u", object_id=9, method="m", pc=1)  # other task: no match
        b.end("t")
        b.end("u")
        index = extract_accesses(b.build())
        assert index.uses == []

    def test_multiple_derefs_attach_to_one_use(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.deref("t", object_id=9, method="m", pc=1)
        b.deref("t", object_id=9, method="m", pc=2)
        b.end("t")
        index = extract_accesses(b.build())
        assert len(index.uses) == 1
        assert len(index.uses[0].deref_indices) == 2

    def test_null_read_never_matches(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=None, method="m", pc=0)
        b.deref("t", object_id=9, method="m", pc=1)
        b.end("t")
        assert extract_accesses(b.build()).uses == []

    def test_use_site_is_method_and_read_pc(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="onResume", pc=7)
        b.deref("t", object_id=9, method="onResume", pc=8)
        b.end("t")
        (use,) = extract_accesses(b.build()).uses
        assert use.site == ("onResume", 7)


class TestFreesAndAllocs:
    def test_null_write_is_a_free(self):
        b = simple_builder()
        b.ptr_write("t", ADDR, value=None, container=1, method="m", pc=0)
        b.end("t")
        index = extract_accesses(b.build())
        assert len(index.frees) == 1
        assert index.allocs == []
        assert index.frees[0].is_free

    def test_reference_write_is_an_alloc(self):
        b = simple_builder()
        b.ptr_write("t", ADDR, value=5, container=1, method="m", pc=0)
        b.end("t")
        index = extract_accesses(b.build())
        assert index.frees == []
        assert len(index.allocs) == 1

    def test_frees_of_filters_by_address(self):
        b = simple_builder()
        b.ptr_write("t", ADDR, value=None, method="m", pc=0)
        b.ptr_write("t", OTHER, value=None, method="m", pc=1)
        b.end("t")
        index = extract_accesses(b.build())
        assert len(index.frees_of(ADDR)) == 1


class TestGuards:
    def test_branch_matched_to_tested_pointer(self):
        b = simple_builder()
        b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.branch("t", BranchKind.IF_EQZ, pc=1, target=3, object_id=9, method="m")
        b.end("t")
        (guard,) = extract_accesses(b.build()).guards
        assert guard.address == ADDR
        assert guard.pc == 1 and guard.target == 3

    def test_unmatched_branch_has_no_address(self):
        b = simple_builder()
        b.branch("t", BranchKind.IF_NEZ, pc=1, target=3, object_id=9, method="m")
        b.end("t")
        (guard,) = extract_accesses(b.build()).guards
        assert guard.address is None


class TestLocksets:
    def test_ops_inside_critical_section_carry_the_lock(self):
        b = simple_builder()
        b.acquire("t", "L")
        i = b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.release("t", "L")
        j = b.ptr_read("t", ADDR, object_id=9, method="m", pc=1)
        b.end("t")
        index = extract_accesses(b.build())
        assert index.lockset(i) == frozenset({"L"})
        assert index.lockset(j) == frozenset()

    def test_nested_locks_accumulate(self):
        b = simple_builder()
        b.acquire("t", "L1")
        b.acquire("t", "L2")
        i = b.ptr_read("t", ADDR, object_id=9, method="m", pc=0)
        b.release("t", "L2")
        b.release("t", "L1")
        b.end("t")
        index = extract_accesses(b.build())
        assert index.lockset(i) == frozenset({"L1", "L2"})

    def test_locksets_are_per_task(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.begin("u")
        b.acquire("t", "L")
        i = b.ptr_read("u", ADDR, object_id=9, method="m", pc=0)
        b.end("u")
        b.release("t", "L")
        b.end("t")
        index = extract_accesses(b.build())
        assert index.lockset(i) == frozenset()
