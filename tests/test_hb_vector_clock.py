"""Tests for vector clocks and the online VC analysis of Section 4.2."""

import pytest

from repro import CAFA_MODEL, build_happens_before
from repro.hb import VectorClock, VectorClockAnalysis
from repro.testing import TraceBuilder


class TestVectorClock:
    def test_fresh_clocks_are_equal(self):
        assert VectorClock() == VectorClock()

    def test_tick_advances_own_component(self):
        vc = VectorClock()
        vc.tick("t")
        assert vc.get("t") == 1
        vc.tick("t")
        assert vc.get("t") == 2

    def test_join_is_pointwise_max(self):
        a = VectorClock({"t": 3, "u": 1})
        b = VectorClock({"t": 1, "u": 5, "v": 2})
        a.join(b)
        assert (a.get("t"), a.get("u"), a.get("v")) == (3, 5, 2)

    def test_happens_before_is_strict(self):
        a = VectorClock({"t": 1})
        b = VectorClock({"t": 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a.copy())

    def test_incomparable_clocks_are_concurrent(self):
        a = VectorClock({"t": 1})
        b = VectorClock({"u": 1})
        assert a.concurrent_with(b)

    def test_copy_is_independent(self):
        a = VectorClock({"t": 1})
        b = a.copy()
        b.tick("t")
        assert a.get("t") == 1

    def test_zero_components_ignored_in_equality(self):
        assert VectorClock({"t": 0}) == VectorClock()


class TestVectorClockAnalysis:
    def test_program_order_respected(self):
        b = TraceBuilder()
        b.thread("t")
        b.begin("t")
        i = b.read("t", "x")
        j = b.write("t", "x")
        b.end("t")
        vc = VectorClockAnalysis(b.build())
        assert vc.ordered(i, j)
        assert not vc.ordered(j, i)

    def test_fork_join_edges(self):
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        f = b.fork("t", "u")
        b.begin("u")
        w = b.write("u", "x")
        b.end("u")
        j = b.join("t", "u")
        r = b.read("t", "x")
        b.end("t")
        vc = VectorClockAnalysis(b.build())
        assert vc.ordered(f, w)
        assert vc.ordered(w, r)

    def test_send_edge(self):
        b = TraceBuilder()
        b.looper("L")
        b.thread("T")
        b.event("E", looper="L")
        b.begin("T")
        s = b.send("T", "E")
        b.end("T")
        b.begin("E")
        r = b.read("E", "x")
        b.end("E")
        vc = VectorClockAnalysis(b.build())
        assert vc.ordered(s, r)

    def test_agrees_with_graph_on_conventional_rules(self):
        """On a trace with no atomicity/queue-rule structure the VC
        ordering must coincide with the graph ordering."""
        b = TraceBuilder()
        b.thread("t")
        b.thread("u")
        b.begin("t")
        b.write("t", "x")
        b.fork("t", "u")
        b.begin("u")
        b.read("u", "x")
        ticket = b.next_ticket()
        b.notify("u", "m", ticket=ticket)
        b.end("u")
        b.wait("t", "m", ticket=ticket)
        b.end("t")
        trace = b.build()
        hb = build_happens_before(trace, CAFA_MODEL)
        vc = VectorClockAnalysis(trace)
        n = len(trace)
        for i in range(n):
            for j in range(n):
                assert vc.ordered(i, j) == hb.ordered(i, j), (i, j)

    def test_underapproximates_on_atomicity_trace(self):
        """The paper's point: the atomicity conclusion is invisible to
        the online algorithm, and the VC order is a strict subset."""
        b = TraceBuilder()
        b.looper("L")
        b.thread("S1")
        b.thread("S2")
        b.thread("T")
        b.event("A", looper="L")
        b.event("B", looper="L")
        b.begin("S1"); b.send("S1", "A"); b.end("S1")
        b.begin("S2"); b.send("S2", "B"); b.end("S2")
        b.begin("A"); b.fork("A", "T"); b.end("A")
        b.begin("T"); b.register("T", "Lst"); b.end("T")
        b.begin("B"); b.perform("B", "Lst"); b.end("B")
        trace = b.build()
        hb = build_happens_before(trace, CAFA_MODEL)
        vc = VectorClockAnalysis(trace)
        n = len(trace)
        vc_pairs = {(i, j) for i in range(n) for j in range(n) if vc.ordered(i, j)}
        hb_pairs = {(i, j) for i in range(n) for j in range(n) if hb.ordered(i, j)}
        assert vc_pairs < hb_pairs  # strict subset

    def test_external_chain_applied(self):
        b = TraceBuilder()
        b.looper("L")
        b.event("e1", looper="L", external=True)
        b.event("e2", looper="L", external=True)
        b.begin("e1")
        i = b.read("e1", "x")
        b.end("e1")
        b.begin("e2")
        j = b.write("e2", "x")
        b.end("e2")
        vc = VectorClockAnalysis(b.build())
        assert vc.ordered(i, j)

    def test_ipc_edges_applied(self):
        b = TraceBuilder()
        b.thread("a")
        b.thread("b")
        b.begin("a")
        b.begin("b")
        w = b.write("a", "x")
        b.ipc_call("a", txn=1, service="s")
        b.ipc_handle("b", txn=1, service="s")
        r = b.read("b", "x")
        b.ipc_reply("b", txn=1, service="s")
        b.ipc_return("a", txn=1, service="s")
        r2 = b.read("a", "y")
        b.end("a")
        b.end("b")
        vc = VectorClockAnalysis(b.build())
        assert vc.ordered(w, r)
        assert vc.ordered(r, r2)
