"""Property-based tests of the sampled detector on random pointer
programs: sampled races are a subset of full detection for arbitrary
traces, budgets, and seeds; identical seeds yield identical results;
exhaustive screening never misses a racy trace."""

from hypothesis import given, settings, strategies as st

from repro.detect import (
    DetectorOptions,
    SamplerOptions,
    UseFreeDetector,
    detect_sampled,
)
from tests.test_property_detect_witness import (
    pointer_program_specs,
    run_pointer_program,
)

EXHAUSTIVE = 1 << 30

budget_st = st.integers(min_value=1, max_value=64)
seed_st = st.integers(min_value=0, max_value=2**16)


@settings(max_examples=40, deadline=None)
@given(spec=pointer_program_specs(), budget=budget_st, seed=seed_st)
def test_sampled_races_subset_of_full(spec, budget, seed):
    trace = run_pointer_program(spec)
    full_keys = {r.key for r in UseFreeDetector(trace).detect().reports}
    sampled = detect_sampled(
        trace, SamplerOptions(budget=budget, seed=seed, confirm=True)
    )
    assert {r.key for r in sampled.races} <= full_keys
    assert sampled.profile.pairs_sampled <= budget


@settings(max_examples=40, deadline=None)
@given(spec=pointer_program_specs(), budget=budget_st, seed=seed_st)
def test_identical_seeds_identical_results(spec, budget, seed):
    trace = run_pointer_program(spec)
    options = SamplerOptions(budget=budget, seed=seed, confirm=True)
    first = detect_sampled(trace, options)
    second = detect_sampled(trace, options)
    assert first.profile == second.profile
    assert [
        (u.read_index, f.index) for u, f, _ in first.suspects
    ] == [(u.read_index, f.index) for u, f, _ in second.suspects]
    assert [r.key for r in first.races] == [r.key for r in second.races]


@settings(max_examples=40, deadline=None)
@given(spec=pointer_program_specs())
def test_exhaustive_screening_flags_every_racy_trace(spec):
    # Recall is limited only by the budget: with the whole population
    # inspected, a trace with full-detection reports is always flagged,
    # and the confirm pass reproduces full detection exactly.
    trace = run_pointer_program(spec)
    full_keys = {r.key for r in UseFreeDetector(trace).detect().reports}
    screen = detect_sampled(trace, SamplerOptions(budget=EXHAUSTIVE))
    assert screen.profile.exhaustive
    if full_keys:
        assert screen.flagged
    confirm = detect_sampled(
        trace, SamplerOptions(budget=EXHAUSTIVE, confirm=True)
    )
    assert {r.key for r in confirm.races} == full_keys
    assert confirm.flagged == bool(full_keys)


@settings(max_examples=20, deadline=None)
@given(spec=pointer_program_specs(), budget=budget_st, seed=seed_st)
def test_subset_holds_without_lockset_filter(spec, budget, seed):
    detector = DetectorOptions(lockset_filter=False)
    trace = run_pointer_program(spec)
    full_keys = {
        r.key for r in UseFreeDetector(trace, detector).detect().reports
    }
    sampled = detect_sampled(
        trace,
        SamplerOptions(
            budget=budget, seed=seed, confirm=True, detector=detector
        ),
    )
    assert {r.key for r in sampled.races} <= full_keys
