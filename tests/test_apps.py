"""Integration tests over the ten application workloads."""

import pytest

from repro.analysis import evaluate_run
from repro.apps import ALL_APPS, APPS_BY_NAME, MyTracksApp, ToDoListApp, make_app
from repro.detect import Verdict, detect_use_free_races

SCALE = 0.03  # keep the suite fast; the rows are scale-invariant


@pytest.fixture(scope="module")
def evaluations():
    out = {}
    for app_cls in ALL_APPS:
        run = app_cls(scale=SCALE, seed=1).run()
        run.trace.validate()
        out[app_cls.name] = (run, evaluate_run(run))
    return out


class TestCatalog:
    def test_ten_apps_in_paper_order(self):
        assert len(ALL_APPS) == 10
        assert ALL_APPS[0].name == "connectbot"
        assert ALL_APPS[-1].name == "music"

    def test_make_app_by_name(self):
        app = make_app("mytracks", scale=0.5, seed=3)
        assert isinstance(app, MyTracksApp)
        assert app.scale == 0.5 and app.seed == 3

    def test_make_app_unknown_name(self):
        with pytest.raises(KeyError, match="unknown app"):
            make_app("angrybirds")

    def test_every_app_documents_its_session(self):
        for app_cls in ALL_APPS:
            assert app_cls.description
            assert app_cls.session
            assert app_cls.paper_row.events > 1000

    def test_paper_rows_sum_to_overall(self):
        """The published overall row: 115 reported, 69 true, 60%."""
        reported = sum(a.paper_row.reported for a in ALL_APPS)
        true = sum(a.paper_row.true_races for a in ALL_APPS)
        assert reported == 115
        assert true == 69
        assert round(true / reported, 2) == 0.60


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=[a.name for a in ALL_APPS])
class TestPerApp:
    def test_row_matches_paper(self, app_cls, evaluations):
        _, evaluation = evaluations[app_cls.name]
        measured = evaluation.row()
        paper = app_cls.paper_row
        assert measured.reported == paper.reported
        assert (measured.a, measured.b, measured.c) == (paper.a, paper.b, paper.c)
        assert (measured.fp1, measured.fp2, measured.fp3) == (
            paper.fp1, paper.fp2, paper.fp3,
        )

    def test_all_reports_have_ground_truth(self, app_cls, evaluations):
        _, evaluation = evaluations[app_cls.name]
        assert not evaluation.unmatched
        assert not evaluation.missed

    def test_commutative_patterns_filtered_not_reported(self, app_cls, evaluations):
        run, evaluation = evaluations[app_cls.name]
        filtered_by = {
            r.witnesses[0].filtered_by for r in evaluation.result.filtered_reports
        }
        assert "if-guard" in filtered_by
        assert "intra-event-allocation" in filtered_by

    def test_no_runtime_violations_in_the_recorded_session(self, app_cls, evaluations):
        """The traced sessions are benign executions (like the paper's:
        the bugs manifest only in *other* interleavings)."""
        run, _ = evaluations[app_cls.name]
        assert run.system.violations == []

    def test_trace_is_serializable(self, app_cls, evaluations):
        from repro.trace import dumps_trace, loads_trace

        run, _ = evaluations[app_cls.name]
        assert len(loads_trace(dumps_trace(run.trace))) == len(run.trace)


class TestScaling:
    def test_noise_scales_but_rows_do_not(self):
        small = MyTracksApp(scale=0.02, seed=1).run()
        large = MyTracksApp(scale=0.08, seed=1).run()
        assert large.event_count > small.event_count
        small_eval = evaluate_run(small)
        large_eval = evaluate_run(large)
        assert small_eval.row().reported == large_eval.row().reported == 8

    def test_full_scale_event_counts_approximate_paper(self):
        """At scale 1.0 the event column lands near the published one.

        (Only checked for one app here to keep the suite fast; the
        full-scale sweep lives in EXPERIMENTS.md.)
        """
        run = MyTracksApp(scale=1.0, seed=1).run()
        paper = MyTracksApp.paper_row.events
        assert abs(run.event_count - paper) / paper < 0.10


class TestToDoListBytecode:
    def test_catch_npe_swallows_the_crash(self):
        """Run the widget callback against a freed db: the simulated
        NPE must be caught by the method's catch block (the paper's
        quoted 'fix'), so no violation is recorded."""
        from repro.runtime import AndroidSystem

        system = AndroidSystem(seed=1)
        app_model = ToDoListApp(scale=0.02, seed=1)
        run = app_model.build(system)
        proc = system.processes["todolist"]
        widget = proc.heap.new("ToDoWidgetProvider")
        widget.fields["db"] = None  # already freed

        crashed = []

        def driver(ctx):
            ctx.call_method("ToDoWidget.updateNote", [widget])
            crashed.append(False)

        proc.thread("driver", driver)
        system.run(max_ms=3000)
        assert crashed == [False]
        assert system.violations == []

    def test_mytracks_race_uses_real_binder_service(self):
        run = MyTracksApp(scale=0.02, seed=1).run()
        from repro.trace import IpcCall

        assert any(isinstance(op, IpcCall) for op in run.trace)
        result = detect_use_free_races(run.trace)
        fig1 = [r for r in result.reports if r.key.field == "providerUtils"]
        assert len(fig1) == 1
        assert fig1[0].key.use_method == "onServiceConnected"
        assert fig1[0].key.free_method == "onDestroy"
