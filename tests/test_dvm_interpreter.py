"""Unit tests for the instrumented mini-DVM interpreter."""

import pytest

from repro.dvm import (
    CollectingSink,
    DvmError,
    DvmNullPointerError,
    DvmStepLimitError,
    Heap,
    Interpreter,
    MethodBuilder,
    Program,
)
from repro.trace import BranchKind


def make_interp(*methods, intrinsics=None, step_limit=10_000):
    program = Program()
    for m in methods:
        program.add_method(m)
    for name, fn in (intrinsics or {}).items():
        program.add_intrinsic(name, fn)
    heap = Heap()
    sink = CollectingSink()
    return Interpreter(program, heap, sink, step_limit=step_limit), heap, sink


class TestDataMovement:
    def test_const_and_return(self):
        m = MethodBuilder("m").const(0, 42).return_value(0).build()
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") == 42

    def test_const_null(self):
        m = MethodBuilder("m").const_null(0).return_value(0).build()
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") is None

    def test_move(self):
        m = MethodBuilder("m").const(0, 7).move(1, 0).return_value(1).build()
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") == 7

    def test_new_instance_allocates(self):
        m = MethodBuilder("m").new_instance(0, "Track").return_value(0).build()
        interp, heap, _ = make_interp(m)
        obj = interp.invoke("m")
        assert obj.cls == "Track"
        assert heap.object_count == 1

    def test_fall_off_end_returns_none(self):
        m = MethodBuilder("m").const(0, 1).build()
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") is None


class TestArithmeticAndControl:
    def test_binops(self):
        m = (
            MethodBuilder("m")
            .const(0, 10).const(1, 3)
            .add(2, 0, 1).sub(3, 2, 1).binop("*", 4, 3, 1)
            .return_value(4)
            .build()
        )
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") == 30  # ((10+3)-3)*3

    def test_goto_skips_code(self):
        m = (
            MethodBuilder("m")
            .const(0, 1)
            .goto("end")
            .const(0, 2)
            .label("end")
            .return_value(0)
            .build()
        )
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") == 1

    def test_loop_with_if_lt(self):
        # sum 0..4 via a backward branch
        m = (
            MethodBuilder("m")
            .const(0, 0)       # i
            .const(1, 0)       # acc
            .const(2, 5)       # bound
            .const(3, 1)       # one
            .label("head")
            .add(1, 1, 0)
            .add(0, 0, 3)
            .if_lt(0, 2, "head")
            .return_value(1)
            .build()
        )
        interp, _, _ = make_interp(m)
        assert interp.invoke("m") == 10

    def test_step_limit_stops_infinite_loop(self):
        m = MethodBuilder("m").label("spin").goto("spin").build()
        interp, _, _ = make_interp(m, step_limit=100)
        with pytest.raises(DvmStepLimitError):
            interp.invoke("m")

    def test_if_eqz_on_int_not_logged(self):
        m = (
            MethodBuilder("m")
            .const(0, 0)
            .if_eqz(0, "skip")
            .label("skip")
            .return_void()
            .build()
        )
        interp, _, sink = make_interp(m)
        interp.invoke("m")
        assert sink.of_kind("branch") == []


class TestPointerInstrumentation:
    def test_iget_object_logs_ptr_read_and_container_deref(self):
        m = (
            MethodBuilder("m", params=1)
            .iget_object(1, 0, "p")
            .return_value(1)
            .build()
        )
        interp, heap, sink = make_interp(m)
        holder = heap.new("Holder")
        target = heap.new("Target")
        holder.fields["p"] = target
        assert interp.invoke("m", [holder]) is target
        reads = sink.of_kind("ptr_read")
        assert reads == [
            ("ptr_read", ("obj", holder.object_id, "p"), target.object_id, "m", 0)
        ]
        derefs = sink.of_kind("deref")
        assert derefs == [("deref", holder.object_id, "m", 0)]

    def test_iput_object_null_is_a_free(self):
        m = (
            MethodBuilder("m", params=1)
            .const_null(1)
            .iput_object(1, 0, "p")
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m)
        holder = heap.new("Holder")
        holder.fields["p"] = heap.new("Target")
        interp.invoke("m", [holder])
        writes = sink.of_kind("ptr_write")
        assert writes == [
            ("ptr_write", ("obj", holder.object_id, "p"), None, holder.object_id, "m", 1)
        ]
        assert holder.fields["p"] is None

    def test_iput_object_reference_is_an_allocation(self):
        m = (
            MethodBuilder("m", params=1)
            .new_instance(1, "Fresh")
            .iput_object(1, 0, "p")
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m)
        holder = heap.new("Holder")
        interp.invoke("m", [holder])
        (record,) = sink.of_kind("ptr_write")
        assert record[2] is not None  # allocation, not free

    def test_iput_object_of_scalar_rejected(self):
        m = (
            MethodBuilder("m", params=1)
            .const(1, 5)
            .iput_object(1, 0, "p")
            .return_void()
            .build()
        )
        interp, heap, _ = make_interp(m)
        with pytest.raises(DvmError, match="non-reference"):
            interp.invoke("m", [heap.new("Holder")])

    def test_static_object_accessors(self):
        put = (
            MethodBuilder("put")
            .new_instance(0, "Singleton")
            .sput_object(0, "Cls", "instance")
            .return_void()
            .build()
        )
        get = (
            MethodBuilder("get")
            .sget_object(0, "Cls", "instance")
            .return_value(0)
            .build()
        )
        interp, heap, sink = make_interp(put, get)
        interp.invoke("put")
        obj = interp.invoke("get")
        assert obj.cls == "Singleton"
        (read,) = sink.of_kind("ptr_read")
        assert read[1] == ("static", "Cls", "instance")

    def test_scalar_iget_iput_log_read_write_records(self):
        m = (
            MethodBuilder("m", params=1)
            .const(1, 99)
            .iput(1, 0, "count")
            .iget(2, 0, "count")
            .return_value(2)
            .build()
        )
        interp, heap, sink = make_interp(m)
        holder = heap.new("Holder")
        assert interp.invoke("m", [holder]) == 99
        assert len(sink.of_kind("write")) == 1
        assert len(sink.of_kind("read")) == 1
        # scalar accesses still dereference the container
        assert len(sink.of_kind("deref")) == 2


class TestBranchLogging:
    def _run_guarded(self, value_is_null):
        m = (
            MethodBuilder("m", params=1)
            .iget_object(1, 0, "p")   # pc 0
            .if_eqz(1, "skip")        # pc 1
            .invoke("use", receiver=1)  # pc 2
            .label("skip")
            .return_void()            # pc 3
            .build()
        )
        interp, heap, sink = make_interp(m, intrinsics={"use": lambda args: None})
        holder = heap.new("Holder")
        holder.fields["p"] = None if value_is_null else heap.new("Target")
        interp.invoke("m", [holder])
        return sink

    def test_if_eqz_not_taken_is_logged(self):
        sink = self._run_guarded(value_is_null=False)
        (branch,) = sink.of_kind("branch")
        assert branch[1] is BranchKind.IF_EQZ
        assert branch[2] == 1 and branch[3] == 3  # pc, target

    def test_if_eqz_taken_not_logged(self):
        sink = self._run_guarded(value_is_null=True)
        assert sink.of_kind("branch") == []

    def test_if_nez_taken_is_logged(self):
        m = (
            MethodBuilder("m", params=1)
            .if_nez(0, "use")
            .return_void()
            .label("use")
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m)
        interp.invoke("m", [heap.new("X")])
        (branch,) = sink.of_kind("branch")
        assert branch[1] is BranchKind.IF_NEZ

    def test_if_nez_not_taken_not_logged(self):
        m = (
            MethodBuilder("m", params=1)
            .if_nez(0, "use")
            .return_void()
            .label("use")
            .return_void()
            .build()
        )
        interp, _, sink = make_interp(m)
        interp.invoke("m", [None])
        assert sink.of_kind("branch") == []

    def test_if_eq_taken_on_same_object_logged(self):
        m = (
            MethodBuilder("m", params=2)
            .if_eq(0, 1, "same")
            .return_void()
            .label("same")
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m)
        obj = heap.new("X")
        interp.invoke("m", [obj, obj])
        (branch,) = sink.of_kind("branch")
        assert branch[1] is BranchKind.IF_EQ

    def test_if_eq_different_objects_not_logged(self):
        m = (
            MethodBuilder("m", params=2)
            .if_eq(0, 1, "same")
            .return_void()
            .label("same")
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m)
        interp.invoke("m", [heap.new("X"), heap.new("X")])
        assert sink.of_kind("branch") == []

    def test_reference_identity_not_structural_equality(self):
        """if-eq on references compares identity, like the VM does."""
        m = (
            MethodBuilder("m", params=2)
            .if_eq(0, 1, "same")
            .const(2, 0)
            .return_value(2)
            .label("same")
            .const(2, 1)
            .return_value(2)
            .build()
        )
        interp, heap, _ = make_interp(m)
        assert interp.invoke("m", [heap.new("X"), heap.new("X")]) == 0


class TestInvocation:
    def test_nested_calls_and_context_records(self):
        inner = MethodBuilder("inner").const(0, 5).return_value(0).build()
        outer = (
            MethodBuilder("outer")
            .invoke("inner", dst=0)
            .return_value(0)
            .build()
        )
        interp, _, sink = make_interp(inner, outer)
        assert interp.invoke("outer") == 5
        enters = sink.of_kind("method_enter")
        exits = sink.of_kind("method_exit")
        assert [e[1] for e in enters] == ["outer", "inner"]
        assert [e[1] for e in exits] == ["inner", "outer"]

    def test_virtual_invoke_derefs_receiver(self):
        run = MethodBuilder("run", params=1).return_void().build()
        m = (
            MethodBuilder("m", params=1)
            .invoke("run", receiver=0)
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(run, m)
        obj = heap.new("Handler")
        interp.invoke("m", [obj])
        assert ("deref", obj.object_id, "m", 0) in sink.of_kind("deref")

    def test_intrinsic_receives_arguments(self):
        seen = []
        m = (
            MethodBuilder("m")
            .const(0, 1).const(1, 2)
            .invoke("native", args=[0, 1], dst=2)
            .return_value(2)
            .build()
        )
        interp, _, _ = make_interp(
            m, intrinsics={"native": lambda args: args[0] + args[1]}
        )
        assert interp.invoke("m") == 3

    def test_unresolved_method_raises(self):
        m = MethodBuilder("m").invoke("ghost").return_void().build()
        interp, _, _ = make_interp(m)
        with pytest.raises(DvmError, match="unresolved"):
            interp.invoke("m")

    def test_wrong_arity_raises(self):
        m = MethodBuilder("m", params=2).return_void().build()
        interp, _, _ = make_interp(m)
        with pytest.raises(DvmError, match="expects 2"):
            interp.invoke("m", [1])


class TestNullPointerExceptions:
    def test_deref_of_null_raises(self):
        m = (
            MethodBuilder("m", params=1)
            .iget_object(1, 0, "p")
            .invoke("use", receiver=1)
            .return_void()
            .build()
        )
        interp, heap, sink = make_interp(m, intrinsics={"use": lambda a: None})
        holder = heap.new("Holder")
        holder.fields["p"] = None
        with pytest.raises(DvmNullPointerError):
            interp.invoke("m", [holder])
        # exceptional exit is logged (Section 5.3 calling-context rules)
        (exit_record,) = sink.of_kind("method_exit")
        assert exit_record[3] is True

    def test_catch_npe_transfers_control(self):
        """The ToDoList 'fix': try { db.update() } catch (NPE) {}."""
        m = (
            MethodBuilder("m", params=1)
            .iget_object(1, 0, "db")
            .invoke("update", receiver=1)
            .const(2, 0)
            .return_value(2)
            .label("caught")
            .const(2, 1)
            .return_value(2)
            .build()
        )
        # rebuild with the catch label registered
        mb = MethodBuilder("m", params=1)
        mb.iget_object(1, 0, "db")
        mb.invoke("update", receiver=1)
        mb.const(2, 0)
        mb.return_value(2)
        mb.label("caught")
        mb.const(2, 1)
        mb.return_value(2)
        mb.catch_npe("caught")
        m = mb.build()
        interp, heap, _ = make_interp(m, intrinsics={"update": lambda a: None})
        holder = heap.new("Holder")
        holder.fields["db"] = None
        assert interp.invoke("m", [holder]) == 1  # landed in the catch block

    def test_npe_propagates_through_uncaught_frames(self):
        inner = (
            MethodBuilder("inner", params=1)
            .invoke("use", receiver=0)
            .return_void()
            .build()
        )
        outer = (
            MethodBuilder("outer")
            .const_null(0)
            .invoke("inner", args=[0])
            .return_void()
            .build()
        )
        interp, _, sink = make_interp(inner, outer, intrinsics={"use": lambda a: None})
        with pytest.raises(DvmNullPointerError):
            interp.invoke("outer")
        exits = sink.of_kind("method_exit")
        assert all(e[3] is True for e in exits)  # both unwound exceptionally

    def test_executed_counter_accumulates(self):
        m = MethodBuilder("m").const(0, 1).return_value(0).build()
        interp, _, _ = make_interp(m)
        interp.invoke("m")
        interp.invoke("m")
        assert interp.executed == 4
